"""E10 — chaos soak: delivery pipelines under a randomized fault diet.

Both delivery styles the paper contrasts — pubsub invalidation fan-out
(§3.2.2) and the watch protocol (§4.2) — are exercised here across a
*lossy* simulated network while a randomized schedule of endpoint
outages and partition windows (plus a nonzero per-message loss rate)
runs against the cross-network hop.  Each pipeline is built twice:

- ``*-reliable``   — the hop is a
  :class:`~repro.resilience.channel.ReliableChannel` (acks, retransmits
  on an exponential-backoff :class:`RetryPolicy`, duplicate
  suppression, per-destination circuit breaker).
- ``*-fireforget`` — the same hop with ``reliable=False``: exactly what
  raw ``Network.send`` gives you.  A dropped message is gone.

The claim under test is symmetric and damning in both directions: with
retries, *both* systems converge to zero staleness once the faults
stop — resilience is a transport property, not an argument for either
protocol; without retries, both silently diverge (permanently stale
cache entries that no audit inside the system can see).  What differs
is the *price*: retransmit counts, duplicates, and the staleness
observed while the chaos is running.

Faults are all scheduled from the simulation RNG, so an identical seed
yields an identical fault schedule, retry timing, and output table.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.runner import ExperimentResult
from repro.cache.cluster import CacheCluster, Prober
from repro.cache.invalidation import (
    FreeInvalidationPipeline,
    InvalidationMode,
    PubsubCacheNode,
)
from repro.cache.node import CacheNodeConfig
from repro.cache.watch_cache import WatchCacheNode
from repro.core.bridge import DirectIngestBridge
from repro.core.relay import ReliableFanoutEndpoint, ReliableFanoutLink
from repro.core.linked_cache import LinkedCacheConfig
from repro.core.watch_system import WatchSystem
from repro.obs import TraceIndex, Tracer
from repro.obs.report import trace_summary_row
from repro.pubsub.broker import Broker
from repro.resilience.breaker import CircuitBreakerConfig
from repro.resilience.channel import ChannelConfig
from repro.resilience.retry import RetryPolicy
from repro.sharding.autosharder import AutoSharder, AutoSharderConfig
from repro.sim.failures import FailureInjector
from repro.sim.kernel import Simulation, Timeout
from repro.sim.network import Network, NetworkConfig
from repro.storage.kv import MVCCStore
from repro.workloads.generators import UniformKeys, WriteStream, key_universe

DEFAULTS = dict(
    configs=("pubsub-reliable", "pubsub-fireforget",
             "watch-reliable", "watch-fireforget"),
    num_nodes=3,
    num_keys=120,
    update_rate=20.0,
    duration=60.0,
    drain=45.0,
    loss_rate=0.08,
    base_latency=0.005,
    net_jitter=0.003,
    outage_mean_interval=18.0,
    outage_mean_duration=1.5,
    partition_duration=2.0,
    probe_rate=40.0,
    poll_interval=0.5,
    seed=53,
)
QUICK = dict(
    configs=("pubsub-reliable", "pubsub-fireforget",
             "watch-reliable", "watch-fireforget"),
    num_nodes=3,
    num_keys=60,
    update_rate=15.0,
    duration=24.0,
    drain=20.0,
    loss_rate=0.08,
    base_latency=0.005,
    net_jitter=0.003,
    outage_mean_interval=8.0,
    outage_mean_duration=1.0,
    partition_duration=1.5,
    probe_rate=40.0,
    poll_interval=0.5,
    seed=53,
)

#: Retransmit schedule for the reliable rows: unbounded, because the
#: chaos schedule includes partitions longer than any attempt budget —
#: the message must outlive the fault, not the other way round.
_RELIABLE_RETRY = RetryPolicy.unbounded(base_delay=0.05, max_delay=1.0)
_BREAKER = CircuitBreakerConfig(failure_threshold=5, cooldown=1.0)


def _channel_config(reliable: bool, ordered: bool) -> ChannelConfig:
    if not reliable:
        return ChannelConfig(reliable=False)
    return ChannelConfig(
        retry=_RELIABLE_RETRY, ordered=ordered, breaker=_BREAKER
    )


def _metric_sum(registries, suffix: str) -> int:
    total = 0
    for registry in registries:
        for name, value in registry.snapshot().items():
            if name.startswith("resilience.") and name.endswith(suffix):
                total += int(value)
    return total


def run(
    configs=("pubsub-reliable", "pubsub-fireforget",
             "watch-reliable", "watch-fireforget"),
    num_nodes: int = 3,
    num_keys: int = 120,
    update_rate: float = 20.0,
    duration: float = 60.0,
    drain: float = 45.0,
    loss_rate: float = 0.08,
    base_latency: float = 0.005,
    net_jitter: float = 0.003,
    outage_mean_interval: float = 18.0,
    outage_mean_duration: float = 1.5,
    partition_duration: float = 2.0,
    probe_rate: float = 40.0,
    poll_interval: float = 0.5,
    seed: int = 53,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E10 chaos soak: reliable vs fire-and-forget delivery "
                   "under loss, outages, and partitions",
        claim="with retries both pubsub and watch pipelines converge to "
              "zero staleness once faults stop; without retries both "
              "silently diverge (permanently stale entries), and the "
              "reliable rows pay for convergence in retransmits and "
              "suppressed duplicates",
    )
    table = result.new_table(
        "chaos soak",
        ["config", "faults", "lost_updates", "retransmits", "dup_dropped",
         "breaker_trips", "stale_reads_frac", "converged", "t_converge_s",
         "final_stale"],
    )
    trace_table = result.new_table(
        "trace summary",
        ["config", "traced_updates", "delivered", "e2e_p50_ms", "e2e_p99_ms",
         "wire_lost", "lost_attributed"],
    )
    tracers = {}
    result.artifacts["tracers"] = tracers
    keys = key_universe(num_keys)

    for config_name in configs:
        system, _, transport = config_name.partition("-")
        reliable = transport == "reliable"
        sim = Simulation(seed=seed)
        store = MVCCStore(clock=sim.now)
        for i, key in enumerate(keys):
            store.put(key, {"v": -1, "i": i})
        # trace only post-prefill commits: attach after the seed writes
        tracer = Tracer(sim, name=config_name)
        tracers[config_name] = tracer
        tracer.observe_store(store)
        # static assignment: no handoffs — E3 already covers the routing
        # race, so any divergence here is attributable to the transport
        sharder = AutoSharder(
            sim, [f"node-{i}" for i in range(num_nodes)],
            AutoSharderConfig(notify_latency=0.01, notify_jitter=0.01),
            auto_rebalance=False,
        )
        net = Network(sim, NetworkConfig(
            base_latency=base_latency, jitter=net_jitter, loss_rate=loss_rate
        ), tracer=tracer)
        injector = FailureInjector(sim)
        registries = [net.metrics]

        if system == "pubsub":
            channel_cfg = _channel_config(reliable, ordered=False)
            broker = Broker(sim, tracer=tracer)
            registries.append(broker.metrics)
            nodes = [
                PubsubCacheNode(
                    sim, f"node-{i}", store, InvalidationMode.NAIVE,
                    config=CacheNodeConfig(fetch_latency=0.01),
                    tracer=tracer,
                )
                for i in range(num_nodes)
            ]
            # free consumers: every node sees the whole feed, so routing
            # cannot miss — only the network hop can
            pipeline = FreeInvalidationPipeline(
                sim, store, broker, sharder, nodes,
                network=net, resilience=channel_cfg, tracer=tracer,
            )
            remote = pipeline.remote_publisher
            assert remote is not None
            outage_target, outage_name = remote, "cdc-publisher"
            partition_pair = ("invalidations-cdc", "invalidations-broker")

            def lost_updates() -> int:
                received = broker.metrics.counter(
                    "resilience.invalidations-broker.received"
                ).value
                return remote.published - received
        elif system == "watch":
            channel_cfg = _channel_config(reliable, ordered=True)
            ws_local = WatchSystem(sim, name="src-ws", tracer=tracer)
            DirectIngestBridge(
                sim, store.history, ws_local, progress_interval=0.25
            )
            ws_remote = WatchSystem(sim, name="edge-ws", tracer=tracer)
            endpoint = ReliableFanoutEndpoint(
                sim, net, "fanout-endpoint", ws_remote, config=channel_cfg,
                tracer=tracer,
            )
            link = ReliableFanoutLink(
                sim, ws_local, net, "fanout-link", remote="fanout-endpoint",
                config=channel_cfg, tracer=tracer,
            )
            nodes = [
                WatchCacheNode(
                    sim, f"node-{i}", store, ws_remote,
                    cache_config=LinkedCacheConfig(snapshot_latency=0.02),
                    tracer=tracer,
                )
                for i in range(num_nodes)
            ]
            for node in nodes:
                sharder.subscribe(node.on_assignment)
            outage_target, outage_name = link, "fanout-link"
            partition_pair = ("fanout-link", "fanout-endpoint")

            def lost_updates() -> int:
                return link.events_shipped - endpoint.events_ingested
        else:
            raise ValueError(f"unknown config {config_name!r}")

        # ------------------------------------------------------------------
        # the chaos schedule: endpoint outages + two partition windows,
        # all over before `duration` so the drain can measure convergence
        faults = injector.random_outages(
            outage_target, outage_name,
            horizon=duration * 0.8,
            mean_interval=outage_mean_interval,
            mean_duration=outage_mean_duration,
        )
        for frac in (0.3, 0.6):
            faults.append(injector.partition_window(
                net, partition_pair[0], partition_pair[1],
                start=duration * frac, duration=partition_duration,
            ))

        cluster = CacheCluster(sim, sharder, nodes, store)
        writer = WriteStream(
            sim, store, UniformKeys(sim, keys), rate=update_rate,
            value_fn=lambda n: {"v": n},
        )
        writer.start()
        prober = Prober(sim, cluster, keys, rate=probe_rate)
        prober.start()
        sim.call_at(duration, writer.stop)
        sim.call_at(duration, prober.stop)

        converge = {"at": None}

        def convergence_probe():
            while converge["at"] is None:
                if (
                    sim.now() >= duration
                    and cluster.total_stale(keys) == 0
                ):
                    converge["at"] = sim.now()
                    return
                yield Timeout(poll_interval)

        sim.spawn(convergence_probe(), name="convergence-probe")
        sim.run(until=duration + drain)

        final_stale = cluster.total_stale(keys)
        converged = converge["at"] is not None
        table.add(
            config=config_name,
            faults=len(faults),
            lost_updates=lost_updates(),
            retransmits=_metric_sum(registries, ".retransmits"),
            dup_dropped=_metric_sum(registries, ".duplicates_dropped"),
            breaker_trips=_metric_sum(registries, ".trips"),
            stale_reads_frac=round(prober.stats.stale_fraction, 4),
            converged=converged,
            t_converge_s=(
                round(converge["at"] - duration, 2) if converged else None
            ),
            final_stale=final_stale,
        )
        trace_table.add(config=config_name, **trace_summary_row(TraceIndex(tracer.log)))

    result.notes.append(
        "lost_updates counts application-level messages the transport "
        "dropped and never repaired (publish commands for pubsub, change "
        "events for watch).  t_converge_s is measured from the end of "
        "the write/fault window to the first staleness-free audit; the "
        "fire-and-forget rows' final_stale entries are invisible to the "
        "application — nothing inside the system will ever fix them."
    )
    return result
