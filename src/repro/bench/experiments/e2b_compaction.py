"""E2b — §3.1: compaction defers but does not eliminate loss.

"Compaction allows applications to configure a recent window for which
every version is kept and before which only the last version is
maintained.  Unfortunately, without notification, subscribers do not
discover that unseen events have been compacted."

Setup: a keyed topic with compaction window W; a consumer lags behind
by L (slow consumer).  We sweep L against W.

- L < W: the consumer sees every version (compaction invisible).
- L > W: intermediate versions the consumer never saw are compacted
  away; it observes value jumps with no gap signal.  For use cases that
  need every transition (audit, incremental materialization, CDC
  deltas), those missing transitions are correctness loss.

The watch comparison: the watch model never promises every historical
version after a lag — it *tells* the consumer (resync) and hands it a
consistent snapshot, so the consumer knows its delta stream has a gap
and can act (here: it marks a checkpoint instead of silently applying a
jump).
"""

from __future__ import annotations

from typing import Dict, List

from repro._types import KeyRange
from repro.bench.runner import ExperimentResult
from repro.core.bridge import DirectIngestBridge
from repro.core.stream import WatcherConfig
from repro.core.watch_system import WatchSystem, WatchSystemConfig
from repro.pubsub.broker import Broker, BrokerConfig
from repro.pubsub.consumer import Consumer
from repro.pubsub.log import CompactionPolicy, RetentionPolicy
from repro.pubsub.subscription import SubscriptionConfig
from repro.sim.kernel import Simulation
from repro.storage.kv import MVCCStore
from repro.workloads.generators import UniformKeys, WriteStream, key_universe

DEFAULTS = dict(
    lag_seconds=(50.0, 200.0, 800.0),
    compaction_window=100.0,
    update_rate=20.0,
    num_keys=40,
    duration=1200.0,
    seed=31,
)
QUICK = dict(
    lag_seconds=(50.0, 400.0),
    compaction_window=100.0,
    update_rate=10.0,
    num_keys=20,
    duration=700.0,
    seed=31,
)


def run(
    lag_seconds=(50.0, 200.0, 800.0),
    compaction_window: float = 100.0,
    update_rate: float = 20.0,
    num_keys: int = 40,
    duration: float = 1200.0,
    seed: int = 31,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E2b compaction loss (§3.1)",
        claim="with consumer lag beyond the compaction window, "
              "intermediate versions vanish without notification; the "
              "watch model reports the gap via resync",
    )
    table = result.new_table(
        "lag sweep",
        ["system", "lag_s", "window_s", "versions_written",
         "versions_observed", "transitions_missed", "gap_signalled"],
    )

    for lag in lag_seconds:
        # -------------------- pubsub with compaction -------------------
        sim = Simulation(seed=seed)
        store = MVCCStore(clock=sim.now)
        broker = Broker(sim, BrokerConfig(compaction_interval=10.0))
        broker.create_topic(
            "updates", num_partitions=1,
            retention=RetentionPolicy(),  # unbounded: isolate compaction
            compaction=CompactionPolicy(recent_window=compaction_window),
        )
        from repro.cdc.publisher import CdcPublisher

        CdcPublisher(sim, store.history, broker, "updates")
        group = broker.consumer_group(
            "updates", "lagged",
            SubscriptionConfig(ack_timeout=lag * 4 + 60.0),
        )
        seen_versions: List[int] = []

        def handler(message):
            seen_versions.append(message.payload["version"])
            return True

        consumer = Consumer(sim, "lagged-0", handler=handler, service_time=0.001)
        group.join(consumer)
        # create the lag: consumer is down for `lag`, then drains
        consumer.crash()
        sim.call_at(lag, consumer.recover)
        writer = WriteStream(
            sim, store, UniformKeys(sim, key_universe(num_keys)), rate=update_rate
        )
        writer.start()
        sim.call_at(duration * 0.7, writer.stop)
        sim.run(until=duration)
        written = store.commit_count
        observed = len(set(seen_versions))
        table.add(
            system="pubsub", lag_s=lag, window_s=compaction_window,
            versions_written=written, versions_observed=observed,
            transitions_missed=written - observed,
            gap_signalled=False,
        )

        # -------------------- watch ------------------------------------
        sim = Simulation(seed=seed)
        store = MVCCStore(clock=sim.now)
        # soft state sized to the compaction window's worth of events
        buffer_events = max(50, int(update_rate * compaction_window))
        ws = WatchSystem(
            sim,
            WatchSystemConfig(
                max_buffered_events=buffer_events,
                watcher_defaults=WatcherConfig(max_backlog=10 * buffer_events),
            ),
        )
        DirectIngestBridge(sim, store.history, ws, progress_interval=5.0)
        writer = WriteStream(
            sim, store, UniformKeys(sim, key_universe(num_keys)), rate=update_rate
        )
        writer.start()
        sim.call_at(duration * 0.7, writer.stop)

        # a consumer arriving `lag` late and asking for history from
        # version 0: the watch system either replays everything (soft
        # state still covers it) or signals resync — never a silent gap
        observed_w = {"events": 0}
        gap = {"resync": False}
        from repro.core.api import FnWatchCallback

        callback = FnWatchCallback()

        def on_event(event):
            observed_w["events"] += 1

        def on_resync():
            # the consumer now *knows* it has a gap: checkpoint from a
            # snapshot and continue from the snapshot version
            gap["resync"] = True
            version = store.last_version
            ws.watch_range(
                KeyRange.all(), version, callback,
                config=WatcherConfig(max_backlog=10 * buffer_events),
            )

        callback._on_event = on_event
        callback._on_resync = on_resync

        def start_lagged_watch():
            ws.watch_range(
                KeyRange.all(), 0, callback,
                config=WatcherConfig(max_backlog=10 * buffer_events),
            )

        sim.call_at(lag, start_lagged_watch)
        sim.run(until=duration)
        written = store.commit_count
        table.add(
            system="watch", lag_s=lag, window_s=compaction_window,
            versions_written=written,
            versions_observed=observed_w["events"],
            transitions_missed=written - observed_w["events"],
            gap_signalled=gap["resync"],
        )

    result.notes.append(
        "pubsub rows with lag > window miss transitions with "
        "gap_signalled=no; the watch rows either replay everything or "
        "signal the gap (resync) so the consumer can checkpoint from a "
        "snapshot instead of silently applying a jump."
    )
    return result
