"""E7 — Figure 5: knowledge regions and snapshot stitching.

"Progress events ... track key ranges and version windows for which
they have complete knowledge and can serve consistent snapshot
results ... or stitch together a consistent snapshot across multiple
ranges, as long as appropriate versions exist in each range."

Setup: a store under continuous writes feeds a watch system through a
*partitioned* bridge (per-range progress, staggered latencies — so no
watcher ever has globally fresh knowledge).  A fleet of watchers covers
the keyspace with deliberately overlapping ranges.  We sweep the
progress cadence and measure:

- the fraction of random range queries servable snapshot-consistently
  from watcher state alone (no store round-trip);
- the staleness of the chosen stitch version (store head minus stitch
  version, in versions);
- how often stitching needed 2+ watchers (the cross-watcher case);
- correctness: every stitched result is compared against the store's
  snapshot at the stitch version (must match exactly).

Pubsub has no row here: a pubsub consumer *cannot* answer "is my state
complete as of version v for range R" at all — that is the point.
"""

from __future__ import annotations

from typing import List

from repro._types import KeyRange
from repro.bench.runner import ExperimentResult
from repro.core.bridge import PartitionedIngestBridge, even_ranges
from repro.core.linked_cache import LinkedCache, LinkedCacheConfig
from repro.core.snapshotter import SnapshotStitcher
from repro.core.watch_system import WatchSystem
from repro.sim.kernel import Simulation, Timeout
from repro.storage.kv import MVCCStore
from repro.workloads.generators import UniformKeys, WriteStream, key_universe

DEFAULTS = dict(
    progress_intervals=(0.1, 0.5, 2.0),
    num_watchers=4,
    num_keys=260,
    update_rate=100.0,
    duration=30.0,
    queries=300,
    seed=83,
)
QUICK = dict(
    progress_intervals=(0.1, 1.0),
    num_watchers=3,
    num_keys=130,
    update_rate=50.0,
    duration=15.0,
    queries=150,
    seed=83,
)


def run(
    progress_intervals=(0.1, 0.5, 2.0),
    num_watchers: int = 4,
    num_keys: int = 260,
    update_rate: float = 100.0,
    duration: float = 30.0,
    queries: int = 300,
    seed: int = 83,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E7 knowledge regions and snapshot stitching (Figure 5)",
        claim="range-scoped progress lets dynamically sharded watchers "
              "serve provably snapshot-consistent reads, stitchable "
              "across watchers; faster progress cadence = fresher "
              "stitches",
    )
    table = result.new_table(
        "progress cadence sweep",
        ["progress_interval_s", "queries", "servable_frac",
         "correct_stitches", "multi_watcher_frac",
         "staleness_versions_p50", "staleness_versions_p99"],
    )
    keys = key_universe(num_keys)

    for interval in progress_intervals:
        sim = Simulation(seed=seed)
        store = MVCCStore(clock=sim.now)
        for i, key in enumerate(keys):
            store.put(key, {"v": -1, "i": i})
        ws = WatchSystem(sim)
        PartitionedIngestBridge(
            sim, store.history, ws, even_ranges(8),
            base_latency=0.005, latency_stagger=0.004,
            progress_interval=interval,
        )

        def snapshot_fn(kr):
            version = store.last_version
            return version, dict(store.scan(kr, version))

        # overlapping watcher ranges: watcher i covers [b_i, b_{i+2})
        bounds = [kr.low for kr in even_ranges(num_watchers)] + [
            even_ranges(num_watchers)[-1].high
        ]
        caches: List[LinkedCache] = []
        for i in range(num_watchers):
            low = bounds[i]
            high = bounds[min(i + 2, len(bounds) - 1)]
            cache = LinkedCache(
                sim, ws, snapshot_fn, KeyRange(low, high),
                config=LinkedCacheConfig(snapshot_latency=0.02),
                name=f"watcher-{i}",
            )
            caches.append(cache)
            cache.start()

        writer = WriteStream(
            sim, store, UniformKeys(sim, keys), rate=update_rate,
            value_fn=lambda n: {"v": n},
        )
        writer.start()
        stitcher = SnapshotStitcher(caches)

        stats = {
            "served": 0, "correct": 0, "multi": 0,
            "staleness": [], "asked": 0,
        }

        def query_driver():
            warmup = 2.0
            yield Timeout(warmup)
            interval_q = (duration - warmup - 1.0) / queries
            for _ in range(queries):
                a = keys[sim.rng.randrange(len(keys))][:1]
                b = keys[sim.rng.randrange(len(keys))][:1]
                low, high = min(a, b), max(a, b)
                if low == high:
                    high = high + "\U0010fffe"
                query = KeyRange(low, high)
                stats["asked"] += 1
                head = store.last_version
                stitch = stitcher.stitch(query)
                if stitch is not None:
                    stats["served"] += 1
                    if len({name for _, name in stitch.pieces}) > 1:
                        stats["multi"] += 1
                    expected = dict(store.scan(query, stitch.version))
                    if stitch.items == expected:
                        stats["correct"] += 1
                    stats["staleness"].append(head - stitch.version)
                yield Timeout(interval_q)

        sim.spawn(query_driver(), name="queries")
        sim.run(until=duration)

        staleness = sorted(stats["staleness"])
        def pct(p):
            if not staleness:
                return 0
            return staleness[min(len(staleness) - 1, int(p * len(staleness)))]

        table.add(
            progress_interval_s=interval,
            queries=stats["asked"],
            servable_frac=round(stats["served"] / stats["asked"], 3)
            if stats["asked"] else 0.0,
            correct_stitches=(stats["correct"] == stats["served"]),
            multi_watcher_frac=round(stats["multi"] / stats["served"], 3)
            if stats["served"] else 0.0,
            staleness_versions_p50=pct(0.50),
            staleness_versions_p99=pct(0.99),
        )

    result.notes.append(
        "correct_stitches=yes means every stitched snapshot byte-matched "
        "the store's snapshot at the stitch version (knowledge-region "
        "immutability in action).  Staleness scales with the progress "
        "cadence, the knob §4.2.2 gives each deployment."
    )
    return result
