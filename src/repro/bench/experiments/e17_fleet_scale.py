"""E17 — shard-parallel fleet: multi-million sessions across processes.

E14 located the single-process ceiling (~500k sessions); the
MigratoryData deployment the paper's scale story is measured against
holds ~10M.  E17 climbs the next rung the way the Kafka-vs-RabbitMQ
study says every datacenter broker does — **partition the fleet**: the
session population splits across N independent, fully deterministic
simulation shards (seeded via the md5 hash in ``repro.pubsub.topic``),
executed ``jobs`` worker processes wide by
:class:`repro.fleet.FleetRunner`, and merged into ONE deterministic
report — counters summed, latency distributions merged exactly through
:class:`~repro.obs.mergehist.MergeHist`, traces concatenated in
``(shard_id, seq)`` order, and every conservation funnel (sessions,
messages, ``net.bytes.*``) re-checked per shard *and* merged.

Workload equivalence is the fairness contract: a rung's ``update_rate``
and ``total_groups`` are **totals**, split evenly across its shards.  A
monolith rung (1 shard) and a fleet rung (N shards) with the same total
population therefore carry identical per-session traffic — same
sessions per group, same updates per group — so their wall-clock ratio
is a like-for-like speedup.  On a single core that ratio isolates the
pure *partitioning* win: the pubsub frontend's per-message ingest scan
is O(sessions in the process) by contract, so the monolith pays
``sessions × messages`` scan work while N shards pay ``1/N`` of it
between them.  On a multi-core host, process parallelism multiplies on
top.  (The watch pipeline fans out through the relay's range index —
already O(matching) — so its single-core speedup is ~1x by design;
the sweep reports both.)

The sweep crosses two axes E14 could not reach:

- **population**: shards × sessions-per-shard to multi-million total
  sessions (the DEFAULTS sweep sums ≥4M across rungs, with a 2M-in-one-
  run headline rung);
- **storm mix**: ``delta`` reconnect storms (cursors within the
  catch-up threshold — E14's cheap regime) vs **mass-snapshot** storms
  (``EdgeFrontendConfig.reconnect_cursor_age`` forces every
  reconnecting cursor below the GC/compaction floor, so the watch path
  pays the snapshot re-serve and the pubsub path pays a full log
  replay across retention holes, surfacing ``replay_gaps``).

Mass snapshots are *measured, not accidentally quadratic*: the
frontend's per-(range, version) snapshot cache answers all but the
first re-serve of each distinct range from already-assembled items
(``snapshot_cache_hits``), and ``VersionedMap.items_at`` batch-scans
the range in one pass.

Wall-clock lives in its own clearly-marked nondeterministic tables;
everything else replays byte-identically for ANY jobs count (the E17
determinism test pins ``jobs=1 == jobs=N`` and run-to-run identity).
"""

from __future__ import annotations

from repro._types import KeyRange
from repro.bench.runner import ExperimentResult
from repro.core.bridge import DirectIngestBridge
from repro.core.watch_system import WatchSystem
from repro.edge.client import EdgeClient
from repro.edge.frontend import (
    EdgeFrontendConfig,
    PubsubEdgeFrontend,
    WatchEdgeFrontend,
)
from repro.edge.placement import SessionPlacement
from repro.edge.session import SessionConfig, SlowConsumerPolicy, SnapshotDelivery
from repro.fleet import FleetRunner, ShardResult, ShardSpec
from repro.obs import MergeHist, Tracer
from repro.pubsub.broker import Broker, BrokerConfig
from repro.pubsub.log import RetentionPolicy
from repro.sim.kernel import Simulation
from repro.sim.network import Network, NetworkConfig
from repro.storage.kv import MVCCStore
from repro.workloads.generators import UniformKeys, WriteStream

#: sweep-table columns, pinned so CI catches shape drift
COLUMNS = [
    "config", "shards", "sessions", "commits", "delivered", "p50_ms",
    "p99_ms", "storm_p50_ms", "storm_p99_ms", "snapshots", "cache_hits",
    "replayed", "replay_gaps", "attributed_pct", "net_mb", "conserved",
]
TIMING_COLUMNS = [
    "config", "shards", "jobs", "wall_s", "sess_per_s", "peak_rss_mb",
]
SPEEDUP_COLUMNS = [
    "config", "sessions", "mono_wall_s", "fleet_wall_s", "speedup",
]

#: rung tuples: (pipeline, num_shards, sessions_per_shard, storm, jobs)
DEFAULTS = dict(
    rungs=(
        ("watch", 1, 1_000_000, "delta", 1),      # monolith speedup base
        ("watch", 4, 250_000, "delta", 4),        # same 1M, fleet side
        ("watch", 8, 250_000, "snapshot", 8),     # the 2M mass-snapshot rung
        ("pubsub", 1, 32_000, "snapshot", 1),     # monolith speedup base
        ("pubsub", 4, 8_000, "snapshot", 4),      # same 32k, fleet side
    ),
    total_groups=64,
    keys_per_group=8,
    update_rate=80.0,
    duration=8.0,
    drain=12.0,
    connect_window=3.0,
    storm_fraction=0.3,
    storm_window=1.5,
    downtime_mean=1.5,
    initial_credits=8,
    max_queue=256,
    drain_interval=0.001,
    delta_threshold=10_000,
    snapshot_threshold=64,
    retention_messages=40,
    lat_client_sample=16,
    trace_sample=4096,
    seed=1701,
)
QUICK = dict(
    rungs=(
        ("watch", 1, 800, "delta", 1),
        ("watch", 2, 400, "delta", 2),
        ("watch", 2, 400, "snapshot", 2),
        ("pubsub", 1, 600, "snapshot", 1),
        ("pubsub", 2, 300, "snapshot", 2),
    ),
    total_groups=16,
    keys_per_group=8,
    update_rate=20.0,
    duration=6.0,
    drain=10.0,
    connect_window=2.0,
    storm_fraction=0.3,
    storm_window=1.0,
    downtime_mean=1.0,
    initial_credits=8,
    max_queue=256,
    drain_interval=0.001,
    delta_threshold=10_000,
    snapshot_threshold=24,
    retention_messages=12,
    lat_client_sample=4,
    trace_sample=64,
    seed=1701,
)

#: conservation funnels checked per shard AND merged (FleetReport)
_SESSION_FUNNEL = (
    "sess.offered",
    ("sess.delivered", "sess.coalesced", "sess.dropped",
     "sess.returned", "sess.queued"),
)


def _group_range(shard_id: int, group: int) -> KeyRange:
    # '/' sorts just below '0': [sNN/gMMM/, sNN/gMMM0) holds exactly
    # the keys "sNN/gMMM/KKK" — shards namespace their keyspace so
    # merged traces and reports never collide across shards
    prefix = f"s{shard_id:02d}/g{group:03d}"
    return KeyRange(f"{prefix}/", f"{prefix}0")


def _shard_keys(shard_id: int, groups: int, keys_per_group: int):
    return [
        f"s{shard_id:02d}/g{group:03d}/{k:03d}"
        for group in range(groups)
        for k in range(keys_per_group)
    ]


class _FleetClient(EdgeClient):
    """EdgeClient sampling its own delivery latency into a MergeHist.

    Client-side measurement against recorded commit times (E14's
    trick): latency covers every sampled client while *tracing* stays
    independently sampled — and because the sink is a fixed-edge
    :class:`MergeHist`, the samples merge exactly across the fleet's
    process boundary.
    """

    __slots__ = ("commit_times", "calm_hist", "storm_hist", "storm_at")

    def __init__(self, *args, commit_times=None, calm_hist=None,
                 storm_hist=None, storm_at=0.0, **kw):
        super().__init__(*args, **kw)
        self.commit_times = commit_times
        self.calm_hist = calm_hist
        self.storm_hist = storm_hist
        self.storm_at = storm_at

    def on_delivery(self, session, item) -> None:
        if self.calm_hist is not None and item.__class__ is not SnapshotDelivery:
            t0 = self.commit_times.get(item.version)
            if t0 is not None:
                now = self.sim.clock._now
                hist = (
                    self.calm_hist if now < self.storm_at else self.storm_hist
                )
                hist.record(now - t0)
        super().on_delivery(session, item)


def run_shard(spec: ShardSpec) -> ShardResult:
    """One fleet shard: an independent deterministic mini-world.

    Everything — keyspace, writer, frontend, sessions, storm schedule —
    derives from the spec alone, so the shard replays identically
    whether it runs inline (``jobs=1``) or in a worker process.
    """
    import resource as _resource
    import time as _time

    p = spec.params
    started = _time.perf_counter()
    pipeline = p["pipeline"]
    storm = p["storm"]
    num_sessions = p["sessions_per_shard"]
    groups = p["groups_per_shard"]

    sim = Simulation(seed=spec.seed)
    store = MVCCStore(clock=sim.now)
    tracer = Tracer(sim, name=f"shard{spec.shard_id:02d}")
    tracer.observe_store(store)
    net = Network(sim, NetworkConfig(base_latency=0.002), tracer=tracer)

    snapshot_storm = storm == "snapshot"
    config = EdgeFrontendConfig(
        session=SessionConfig(
            policy=(
                SlowConsumerPolicy.COALESCE if pipeline == "watch"
                else SlowConsumerPolicy.DROP
            ),
            max_queue=p["max_queue"],
            initial_credits=p["initial_credits"],
            delivery_latency=0.001,
        ),
        catchup_threshold=(
            p["snapshot_threshold"] if snapshot_storm
            else p["delta_threshold"]
        ),
        # the mass-snapshot knob: reconnecting cursors are treated as
        # hopelessly far behind, whatever they really hold
        reconnect_cursor_age=10 ** 9 if snapshot_storm else None,
        drain_interval=p["drain_interval"],
        trace_sample=p["trace_sample"],
        feed_progress=False,
    )

    connect_window = p["connect_window"]
    write_start = connect_window + 0.5
    duration = p["duration"]
    drain = p["drain"]
    end_at = write_start + duration + drain
    storm_at = write_start + duration / 2.0

    commit_times: dict = {}
    store.history.tail(
        lambda commit: commit_times.__setitem__(
            commit.version, sim.clock._now
        )
    )
    calm_hist = MergeHist.for_latency()
    storm_hist = MergeHist.for_latency()

    if pipeline == "watch":
        source = WatchSystem(sim, name="src-ws", tracer=tracer)
        bridge = DirectIngestBridge(
            sim, store.history, source, latency=0.002,
            progress_interval=0.25,
        )
        # quiesce the wire before cutoff: the bridge ticks progress
        # frames forever, and a frame in flight at end_at would
        # (rightly) fail the exact net.bytes funnel.  Everything the
        # writer commits is long since forwarded by mid-drain.
        sim.call_at(end_at - drain / 2.0, bridge.close)

        def store_snapshot(key_range):
            version = store.last_version
            return version, dict(store.scan(key_range, version))

        frontend = WatchEdgeFrontend(
            sim, f"s{spec.shard_id:02d}-fe", source, store_snapshot,
            net=net, config=config, tracer=tracer,
        )
    elif pipeline == "pubsub":
        # gc_interval well inside the run so the retention floor is
        # real: by storm time the logs have been trimmed and replays
        # from aged cursors must cross the holes
        broker = Broker(sim, BrokerConfig(gc_interval=2.0), tracer=tracer)
        broker.create_topic(
            "updates", num_partitions=4,
            # a real retention floor: snapshot-storm replays that reach
            # below it cross silent holes, counted as replay_gaps
            retention=RetentionPolicy(max_messages=p["retention_messages"]),
        )

        def publish_commit(commit):
            for key, mutation in commit.writes:
                broker.publish("updates", key, {
                    "version": commit.version, "value": mutation.value,
                })

        store.history.tail(publish_commit)
        frontend = PubsubEdgeFrontend(
            sim, f"s{spec.shard_id:02d}-fe", broker, "updates",
            net=net, config=config, tracer=tracer,
        )
    else:
        raise ValueError(f"unknown pipeline {pipeline!r}")

    placement = SessionPlacement(sim, [frontend])
    lat_sample = p["lat_client_sample"]
    clients = []
    for i in range(num_sessions):
        sampled = i % lat_sample == 0
        client = _FleetClient(
            sim, f"s{spec.shard_id:02d}c{i:07d}", placement,
            key_range=_group_range(spec.shard_id, i % groups),
            service_time=0.0,
            reconnect_delay=0.3,
            commit_times=commit_times,
            calm_hist=calm_hist if sampled else None,
            storm_hist=storm_hist if sampled else None,
            storm_at=storm_at,
        )
        clients.append(client)
        sim.call_after(sim.rng.uniform(0.0, connect_window), client.connect)

    keys = _shard_keys(spec.shard_id, groups, p["keys_per_group"])
    writer = WriteStream(
        sim, store, UniformKeys(sim, keys), rate=p["rate"],
        value_fn=lambda n: n,
    )
    sim.call_at(write_start, writer.start)
    sim.call_at(write_start + duration, writer.stop)

    # the reconnect storm: a deterministic sample drops inside the
    # window and returns after a bounded-exponential holdoff
    stormers = sim.rng.sample(
        clients, round(num_sessions * p["storm_fraction"])
    )
    downtime_mean = p["downtime_mean"]
    for client in stormers:
        hit_at = storm_at + sim.rng.uniform(0.0, p["storm_window"])
        downtime = min(
            sim.rng.expovariate(1.0 / downtime_mean), 4 * downtime_mean
        )

        def hit(client=client, downtime=downtime):
            if client.session is None:
                return
            client.auto_reconnect = False
            client.disconnect()

            def back():
                client.auto_reconnect = True
                client.connect()

            sim.call_after(downtime, back)

        sim.call_at(hit_at, hit)

    sim.run(until=end_at)

    # ------------------------------------------------------------------
    # shard accounting
    totals = {key: 0 for key in
              ("offered", "delivered", "coalesced", "dropped",
               "returned", "queued")}
    reconnects = 0
    for client in clients:
        client.stop()
        client_totals = client.finalize()
        for key in totals:
            totals[key] += client_totals[key]
        if len(client.staleness_at_connect) > 1:
            reconnects += len(client.staleness_at_connect) - 1

    counters = {f"sess.{key}": value for key, value in totals.items()}
    counters["commits"] = int(store.last_version)
    counters["edge.connects"] = frontend.connects
    counters["edge.reconnects"] = reconnects
    counters["edge.catchups"] = frontend.catchups_served
    if pipeline == "watch":
        counters["edge.snapshots"] = frontend.snapshots_served
        counters["edge.snapshot_cache_hits"] = frontend.snapshot_cache_hits
        counters["edge.feed_resyncs"] = frontend.feed_resyncs
        counters["msgs.relay_head"] = int(frontend.head_version())
    else:
        counters["edge.replayed"] = frontend.replayed
        counters["edge.replay_gaps"] = frontend.replay_gaps
        counters["msgs.published"] = int(
            broker.metrics.counter("pubsub.published").value
        )
    for name, value in sorted(net.metrics.snapshot().items()):
        if name.startswith("net.bytes."):
            counters[name] = int(value)

    return ShardResult(
        shard_id=spec.shard_id,
        counters=counters,
        hists={"lat.calm": calm_hist, "lat.storm": storm_hist},
        trace_jsonl=tracer.to_jsonl(),
        info={
            "wall": _time.perf_counter() - started,
            # per-process peak (kB on Linux).  With maxtasksperchild=1
            # each shard's worker dies after its task, so a fleet's
            # peak-per-process is ~1/N of the monolith's — the memory
            # half of the partition-the-fleet argument.  In-process
            # runs (jobs=1) accumulate across shards; still an honest
            # per-process peak.
            "maxrss_kb": _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss,
        },
    )


class _MergedTrace:
    """Adapter so merged fleet traces export through the existing
    ``--trace-dir`` plumbing (duck-types a Tracer: ``.log`` sized via
    ``len``, ``.to_jsonl()``)."""

    def __init__(self, jsonl: str) -> None:
        self._jsonl = jsonl
        self.log = jsonl.splitlines()

    def to_jsonl(self) -> str:
        return self._jsonl


def _funnels(pipeline: str, report) -> dict:
    funnels = {"sessions": _SESSION_FUNNEL}
    if pipeline == "watch":
        # every commit the store made is known to the shard's relay
        funnels["messages"] = ("commits", ("msgs.relay_head",))
    else:
        # single-key writes: exactly one publish per commit
        funnels["messages"] = ("commits", ("msgs.published",))
    dropped = [
        key for key in report.counters
        if key.startswith("net.bytes.dropped")
    ]
    funnels["net.bytes"] = (
        "net.bytes.sent", tuple(["net.bytes.delivered", *dropped])
    )
    return funnels


def run(
    rungs=QUICK["rungs"],
    total_groups: int = 16,
    keys_per_group: int = 8,
    update_rate: float = 20.0,
    duration: float = 6.0,
    drain: float = 10.0,
    connect_window: float = 2.0,
    storm_fraction: float = 0.3,
    storm_window: float = 1.0,
    downtime_mean: float = 1.0,
    initial_credits: int = 8,
    max_queue: int = 256,
    drain_interval: float = 0.001,
    delta_threshold: int = 10_000,
    snapshot_threshold: int = 24,
    retention_messages: int = 12,
    lat_client_sample: int = 4,
    trace_sample: int = 64,
    seed: int = 1701,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E17 shard-parallel fleet: multi-million sessions "
                   "across worker processes, delta vs mass-snapshot "
                   "storms",
        claim="partitioning the session population across independent "
              "deterministic shards merges into one byte-identical "
              "report (counters summed, histograms merged exactly, "
              "traces in (shard, seq) order) with every conservation "
              "funnel intact per shard and merged, and beats the "
              "monolith's wall clock on the same total population — "
              "the partition-the-fleet rung toward the 10M-user "
              "deployment",
    )
    sweep = result.new_table("fleet sweep", list(COLUMNS))
    timing = result.new_table(
        "wall clock (nondeterministic; excluded from determinism gates)",
        list(TIMING_COLUMNS),
    )
    speedup_table = result.new_table(
        "speedup vs 1-process monolith (nondeterministic; excluded "
        "from determinism gates)",
        list(SPEEDUP_COLUMNS),
    )
    traces = {}
    result.artifacts["tracers"] = traces
    result.artifacts["reports"] = reports = {}

    walls: dict = {}
    for pipeline, num_shards, per_shard, storm, jobs in rungs:
        if total_groups % num_shards:
            raise ValueError(
                f"total_groups={total_groups} must divide evenly into "
                f"{num_shards} shards"
            )
        params = dict(
            pipeline=pipeline,
            storm=storm,
            sessions_per_shard=per_shard,
            # totals split across shards: same per-session traffic on
            # both sides of every monolith-vs-fleet pair
            groups_per_shard=total_groups // num_shards,
            rate=update_rate / num_shards,
            keys_per_group=keys_per_group,
            duration=duration,
            drain=drain,
            connect_window=connect_window,
            storm_fraction=storm_fraction,
            storm_window=storm_window,
            downtime_mean=downtime_mean,
            initial_credits=initial_credits,
            max_queue=max_queue,
            drain_interval=drain_interval,
            delta_threshold=delta_threshold,
            snapshot_threshold=snapshot_threshold,
            retention_messages=retention_messages,
            lat_client_sample=lat_client_sample,
            trace_sample=trace_sample,
        )
        runner = FleetRunner(
            run_shard, num_shards=num_shards, run_seed=seed, jobs=jobs,
        )
        report = runner.run(params)
        report.check_conservation(_funnels(pipeline, report))

        total_sessions = num_shards * per_shard
        config_name = f"{pipeline}-{storm}"
        label = f"{config_name}-{num_shards}x{per_shard}"
        reports[label] = report
        traces[label] = _MergedTrace(report.trace_jsonl())
        walls[(config_name, total_sessions, num_shards)] = report.wall

        counters = report.counters
        offered = counters.get("sess.offered", 0)
        accounted = sum(
            counters.get(f"sess.{key}", 0)
            for key in ("delivered", "coalesced", "dropped", "returned",
                        "queued")
        )
        calm = report.hists["lat.calm"]
        storm_h = report.hists["lat.storm"]
        sweep.add(
            config=config_name,
            shards=num_shards,
            sessions=total_sessions,
            commits=counters["commits"],
            delivered=counters.get("sess.delivered", 0),
            p50_ms=round(calm.quantile(0.50) * 1000, 2),
            p99_ms=round(calm.quantile(0.99) * 1000, 2),
            storm_p50_ms=round(storm_h.quantile(0.50) * 1000, 2),
            storm_p99_ms=round(storm_h.quantile(0.99) * 1000, 2),
            snapshots=counters.get("edge.snapshots", 0),
            cache_hits=counters.get("edge.snapshot_cache_hits", 0),
            replayed=counters.get("edge.replayed", 0),
            replay_gaps=counters.get("edge.replay_gaps", 0),
            attributed_pct=(
                round(100.0 * accounted / offered, 1) if offered else 100.0
            ),
            net_mb=round(counters.get("net.bytes.sent", 0) / 1e6, 2),
            conserved=True,  # check_conservation raised otherwise
        )
        timing.add(
            config=config_name,
            shards=num_shards,
            jobs=jobs,
            wall_s=round(report.wall, 1),
            sess_per_s=round(total_sessions / report.wall)
            if report.wall else 0,
            peak_rss_mb=round(max(
                shard.info.get("maxrss_kb", 0) for shard in report.shards
            ) / 1024),
        )

    # speedup pairs: same (config, total sessions), monolith vs fleet
    for (config_name, total, num_shards), wall in sorted(walls.items()):
        if num_shards != 1:
            continue
        fleet = sorted(
            (shards, fleet_wall)
            for (cfg, tot, shards), fleet_wall in walls.items()
            if cfg == config_name and tot == total and shards > 1
        )
        for shards, fleet_wall in fleet:
            speedup_table.add(
                config=f"{config_name}-{shards}w",
                sessions=total,
                mono_wall_s=round(wall, 1),
                fleet_wall_s=round(fleet_wall, 1),
                speedup=round(wall / fleet_wall, 2) if fleet_wall else 0.0,
            )

    result.notes.append(
        "merged reports are byte-identical for any jobs count (the "
        "determinism suite pins jobs=1 == jobs=N); the wall-clock and "
        "speedup tables are the only nondeterministic output"
    )
    result.notes.append(
        "single-core speedup comes from partitioning alone: the pubsub "
        "frontend's per-message ingest scan is O(sessions in the "
        "process), so N shards do 1/N of the monolith's scan work; the "
        "watch relay's range index is already O(matching), so on one "
        "core its fleet leg only pays the process overhead (ratio < 1) "
        "— partitioning the watch pipeline needs real cores"
    )
    result.notes.append(
        "the retention floor is per-broker: the monolith's partition "
        "logs hold N shards' traffic and GC sooner, so mass-snapshot "
        "replays cross more holes (replay_gaps) than the same "
        "population sharded — a real operational argument for "
        "partitioning beyond wall-clock"
    )
    return result
