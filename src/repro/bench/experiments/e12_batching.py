"""E12 — batched transport: flush window × batch size × fan-out sweep.

Both delivery pipelines run the same multi-key transaction workload
over a lossy network, once with every batching lever off (the
per-message baseline every prior experiment used) and then across a
sweep of the levers the transport layer exposes:

- **pubsub** — store → CDC group-commit (one wire frame per
  transaction) → :class:`~repro.pubsub.broker.RemotePublisher` batch
  publish → broker → free-consumer invalidation fan-out with
  ``max_delivery_batch`` grouped deliveries and group-applied handler
  invocations.  The consumer model charges a fixed *dispatch cost* per
  handler invocation on top of the per-record service time, so the
  unbatched row saturates at high commit rates and the batched rows
  amortize the dispatch cost across the group — the throughput side of
  the crossover.
- **watch** — store → ingest bridge → watch relay whose
  :class:`~repro.resilience.channel.ReliableChannel` carries
  :class:`~repro.transport.BatchConfig` frames (size + linger flush
  policy, cumulative per-frame acks, batch retransmit) to fan-out
  cache nodes.  Here batching buys wire efficiency — frames,
  retransmits, and ack traffic shrink — and the linger window is pure
  added latency: the latency side of the crossover.

The sweep holds a base point (``batch=16, linger=5ms, fanout=3``) and
varies one axis at a time, plus one fire-and-forget row per pipeline
at the base point: a dropped *frame* there is N records gone at once,
and the trace layer must still attribute every one of them
(``wire_lost == lost_attributed`` — the per-frame ``n_events`` spans
and the shared frame seq on each record's send hop make a single
``net.drop`` event account for the whole group).

Everything is driven by the simulation clock and seeded RNG, so the
output table is byte-deterministic for a given seed.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bench.runner import ExperimentResult
from repro.cache.invalidation import (
    FreeInvalidationPipeline,
    InvalidationMode,
    PubsubCacheNode,
)
from repro.cache.node import CacheNodeConfig
from repro.cache.watch_cache import WatchCacheNode
from repro.core.bridge import DirectIngestBridge
from repro.core.relay import ReliableFanoutEndpoint, ReliableFanoutLink
from repro.core.linked_cache import LinkedCacheConfig
from repro.core.watch_system import WatchSystem
from repro.obs import TraceIndex, Tracer
from repro.obs.report import trace_summary_row
from repro.obs.trace import hops
from repro.pubsub.broker import Broker
from repro.resilience.channel import ChannelConfig
from repro.resilience.retry import RetryPolicy
from repro.sharding.autosharder import AutoSharder, AutoSharderConfig
from repro.sim.kernel import Simulation, Timeout
from repro.sim.network import Network, NetworkConfig
from repro.storage.kv import MVCCStore, Mutation
from repro.transport import BatchConfig
from repro.workloads.generators import key_universe

DEFAULTS = dict(
    pipelines=("pubsub", "watch"),
    batch_sizes=(1, 4, 16, 64),
    lingers_ms=(1.0, 5.0, 20.0),
    fanouts=(1, 3, 8),
    base_batch=16,
    base_linger_ms=5.0,
    base_fanout=3,
    num_keys=64,
    txn_size=4,
    commit_rate=60.0,
    burst=8,
    duration=12.0,
    drain=8.0,
    loss_rate=0.02,
    base_latency=0.005,
    net_jitter=0.002,
    dispatch_cost=0.004,
    record_service=0.0005,
    seed=31,
)
QUICK = dict(
    pipelines=("pubsub", "watch"),
    batch_sizes=(1, 16),
    lingers_ms=(5.0,),
    fanouts=(3,),
    base_batch=16,
    base_linger_ms=5.0,
    base_fanout=3,
    num_keys=48,
    txn_size=4,
    commit_rate=60.0,
    burst=8,
    duration=6.0,
    drain=6.0,
    loss_rate=0.02,
    base_latency=0.005,
    net_jitter=0.002,
    dispatch_cost=0.004,
    record_service=0.0005,
    seed=31,
)

#: Unbounded retransmits: the sweep measures batching cost, and a
#: give-up on the reliable rows would conflate loss with the lever.
_RETRY = RetryPolicy.unbounded(base_delay=0.05, max_delay=0.5)


def _sweep(batch_sizes, lingers_ms, fanouts, base_batch, base_linger_ms,
           base_fanout) -> list:
    """(batch, linger_ms, fanout, reliable) combos: one axis at a time."""
    combos = [(b, base_linger_ms, base_fanout, True) for b in batch_sizes]
    combos += [
        (base_batch, linger, base_fanout, True)
        for linger in lingers_ms if linger != base_linger_ms
    ]
    combos += [
        (base_batch, base_linger_ms, fanout, True)
        for fanout in fanouts if fanout != base_fanout
    ]
    # fire-and-forget at the base point: lost frames must attribute
    combos.append((base_batch, base_linger_ms, base_fanout, False))
    return combos


def _txn_writer(sim, store, keys, txn_size, rate, duration, burst):
    """Commit ``txn_size``-key transactions at ``rate`` (average) until
    ``duration``, in back-to-back bursts of ``burst`` commits — the
    arrival pattern that lets frames actually fill, so the batch-size
    axis has something to bind on.  Rotating key windows, no RNG draw:
    the record stream is identical across every configuration."""
    interval = burst / rate
    state = {"commits": 0}

    def _run():
        n = 0
        idx = 0
        while sim.now() < duration:
            for _ in range(burst):
                writes = {
                    keys[(idx + j) % len(keys)]: Mutation.put({"v": n, "j": j})
                    for j in range(txn_size)
                }
                idx = (idx + txn_size) % len(keys)
                store.commit(writes)
                state["commits"] += 1
                n += 1
            yield Timeout(interval)

    sim.spawn(_run(), name="txn-writer")
    return state


def _terminal_stats(tracer, hop) -> Tuple[int, Optional[float]]:
    """(count, active span seconds) of a terminal hop's events."""
    count, first, last = 0, None, None
    for event in tracer.log:
        if event.hop != hop:
            continue
        count += 1
        if first is None:
            first = event.t
        last = event.t
    span = (last - first) if count > 1 else None
    return count, span


def _metric_sum(registries, suffix: str) -> int:
    total = 0
    for registry in registries:
        for name, value in registry.snapshot().items():
            if name.startswith("resilience.") and name.endswith(suffix):
                total += int(value)
    return total


def run(
    pipelines=("pubsub", "watch"),
    batch_sizes=(1, 4, 16, 64),
    lingers_ms=(1.0, 5.0, 20.0),
    fanouts=(1, 3, 8),
    base_batch: int = 16,
    base_linger_ms: float = 5.0,
    base_fanout: int = 3,
    num_keys: int = 64,
    txn_size: int = 4,
    commit_rate: float = 60.0,
    burst: int = 8,
    duration: float = 12.0,
    drain: float = 8.0,
    loss_rate: float = 0.02,
    base_latency: float = 0.005,
    net_jitter: float = 0.002,
    dispatch_cost: float = 0.004,
    record_service: float = 0.0005,
    seed: int = 31,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E12 batched transport: flush window x batch size x "
                   "fan-out across both delivery pipelines",
        claim="group frames amortize per-message dispatch and wire costs "
              "(the unbatched pubsub row saturates; batched rows keep up "
              "and cut frames/retransmits) while the linger window is a "
              "latency floor — and a lost frame still attributes every "
              "one of its N records",
    )
    table = result.new_table(
        "batching sweep",
        ["config", "batch", "linger_ms", "fanout", "frames", "wire_msgs",
         "msgs_per_frame", "retransmits", "applied", "throughput_rps",
         "e2e_p50_ms", "e2e_p99_ms", "wire_lost", "lost_attributed"],
    )
    # real encoded wire volume (net.bytes.*): how many bytes batching
    # actually saves per message once frame overhead is amortized
    bytes_table = result.new_table(
        "wire bytes",
        ["config", "batch", "linger_ms", "fanout", "bytes_sent",
         "bytes_delivered", "bytes_dropped", "bytes_per_frame",
         "bytes_per_msg"],
    )
    keys = key_universe(num_keys)
    combos = _sweep(batch_sizes, lingers_ms, fanouts, base_batch,
                    base_linger_ms, base_fanout)

    for system in pipelines:
        for batch, linger_ms, fanout, reliable in combos:
            batched = batch > 1
            batch_cfg = (
                BatchConfig(max_batch=batch, max_linger=linger_ms / 1000.0)
                if batched else None
            )
            sim = Simulation(seed=seed)
            store = MVCCStore(clock=sim.now)
            for i, key in enumerate(keys):
                store.put(key, {"v": -1, "j": i})
            tracer = Tracer(sim, name=f"{system}-b{batch}")
            tracer.observe_store(store)
            sharder = AutoSharder(
                sim, [f"node-{i}" for i in range(fanout)],
                AutoSharderConfig(notify_latency=0.01, notify_jitter=0.01),
                auto_rebalance=False,
            )
            net = Network(sim, NetworkConfig(
                base_latency=base_latency, jitter=net_jitter,
                loss_rate=loss_rate,
            ), tracer=tracer)
            registries = [net.metrics]

            if system == "pubsub":
                channel_cfg = ChannelConfig(
                    reliable=reliable,
                    retry=_RETRY if reliable else None,
                    batch=batch_cfg,
                )
                broker = Broker(sim, tracer=tracer)
                registries.append(broker.metrics)
                nodes = [
                    PubsubCacheNode(
                        sim, f"node-{i}", store, InvalidationMode.NAIVE,
                        config=CacheNodeConfig(fetch_latency=0.01),
                        tracer=tracer,
                    )
                    for i in range(fanout)
                ]
                # dispatch cost is per handler invocation: the unbatched
                # row pays it per record, batched rows once per group
                FreeInvalidationPipeline(
                    sim, store, broker, sharder, nodes,
                    network=net, resilience=channel_cfg, tracer=tracer,
                    delivery_batch=batch,
                    batch_overhead=dispatch_cost if batched else 0.0,
                    group_commit=batched,
                    service_time=record_service + (
                        0.0 if batched else dispatch_cost
                    ),
                )
                terminal = hops.CACHE_APPLY
            else:
                channel_cfg = ChannelConfig(
                    reliable=reliable,
                    retry=_RETRY if reliable else None,
                    ordered=reliable,
                    batch=batch_cfg,
                )
                ws_local = WatchSystem(sim, name="src-ws", tracer=tracer)
                DirectIngestBridge(
                    sim, store.history, ws_local, progress_interval=0.25
                )
                ws_remote = WatchSystem(sim, name="edge-ws", tracer=tracer)
                ReliableFanoutEndpoint(
                    sim, net, "fanout-endpoint", ws_remote,
                    config=channel_cfg, tracer=tracer,
                )
                ReliableFanoutLink(
                    sim, ws_local, net, "fanout-link",
                    remote="fanout-endpoint", config=channel_cfg,
                    tracer=tracer,
                )
                nodes = [
                    WatchCacheNode(
                        sim, f"node-{i}", store, ws_remote,
                        cache_config=LinkedCacheConfig(snapshot_latency=0.02),
                        tracer=tracer,
                    )
                    for i in range(fanout)
                ]
                for node in nodes:
                    sharder.subscribe(node.on_assignment)
                terminal = hops.WATCH_APPLY

            _txn_writer(
                sim, store, keys, txn_size, commit_rate, duration, burst
            )
            sim.run(until=duration + drain)

            applied, span = _terminal_stats(tracer, terminal)
            frames = net.metrics.counter("net.frames.sent").value
            wire_msgs = net.metrics.counter("net.payload.msgs").value
            summary = trace_summary_row(TraceIndex(tracer.log))
            transport = "reliable" if reliable else "fireforget"
            table.add(
                config=f"{system}-{transport}",
                batch=batch,
                linger_ms=linger_ms if batched else 0.0,
                fanout=fanout,
                frames=frames,
                wire_msgs=wire_msgs,
                msgs_per_frame=(
                    round(wire_msgs / frames, 2) if frames else None
                ),
                retransmits=_metric_sum(registries, ".retransmits"),
                applied=applied,
                throughput_rps=(
                    round(applied / span, 1) if span else None
                ),
                e2e_p50_ms=summary["e2e_p50_ms"],
                e2e_p99_ms=summary["e2e_p99_ms"],
                wire_lost=summary["wire_lost"],
                lost_attributed=summary["lost_attributed"],
            )
            bytes_sent = net.metrics.counter("net.bytes.sent").value
            bytes_delivered = net.metrics.counter("net.bytes.delivered").value
            bytes_dropped = sum(
                value for name, value in net.metrics.snapshot().items()
                if name.startswith("net.bytes.dropped.")
            )
            bytes_table.add(
                config=f"{system}-{transport}",
                batch=batch,
                linger_ms=linger_ms if batched else 0.0,
                fanout=fanout,
                bytes_sent=bytes_sent,
                bytes_delivered=bytes_delivered,
                bytes_dropped=int(bytes_dropped),
                bytes_per_frame=(
                    round(bytes_sent / frames, 1) if frames else None
                ),
                bytes_per_msg=(
                    round(bytes_sent / wire_msgs, 1) if wire_msgs else None
                ),
            )

    result.notes.append(
        "batch=1 rows are the fully unbatched baseline (no group commit, "
        "no frames, per-message delivery) and pay the dispatch cost per "
        "record; batched rows pay it per handler invocation.  wire_msgs "
        "counts payloads crossing the network, so msgs_per_frame is the "
        "realized (not configured) frame fill.  The fire-and-forget rows "
        "exist for the attribution bar: every record lost inside a "
        "dropped frame must be attributed to that frame's drop event "
        "(wire_lost == lost_attributed)."
    )
    result.notes.append(
        "wire bytes are real encoded frame sizes (repro.sim.wire codec) "
        "from the net.bytes.* counters: sent = delivered + dropped for "
        "every row.  Batching cuts total bytes_sent (acks, retransmitted "
        "duplicates, and per-message channel envelopes collapse into "
        "per-frame ones) even though group-commit metadata makes the "
        "individual record slightly larger — bytes_per_frame times "
        "msgs_per_frame, not bytes_per_msg, is where the amortization "
        "shows."
    )
    return result
