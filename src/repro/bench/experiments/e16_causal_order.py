"""E16 — causal ordering: FIFO vs causal delivery on both pipelines.

§2/§3 of the paper pin pubsub's ordering contract at *per-partition
FIFO*: two updates on different keys (different partitions, or merely
different network fates) may reach a consumer in either order, even
when one was written strictly after — and because of — the other.  The
canonical victim is the data/pointer pattern: write ``data:i``, then
write ``ptr:i`` referencing it; a subscriber that applies the pointer
first dereferences a value it does not have yet.

This experiment measures that violation and what the
:mod:`repro.causal` tier costs to eliminate it, on both pipelines:

- **pubsub** — CDC records cross a *lossy, unordered* publish wire to
  the broker (a dropped publish frame retransmits and lands late, so
  append order across keys diverges from commit order), then a
  consumer-group subscription delivers them.  ``delivery_mode="causal"``
  routes fetched messages through the subscription's cross-partition
  :class:`~repro.causal.buffer.CausalBuffer`.
- **watch** — a :class:`~repro.core.bridge.PartitionedIngestBridge`
  with per-range latency stagger feeds the watch system (the ``ptr:``
  range is the *fast* partition, so pointers systematically overtake
  their data), a reliable link ships the stream to an edge frontend,
  and clients audit their delivery order.  ``delivery_mode="causal"``
  gates each session feed through a per-session buffer floored at its
  catch-up point.

Causal rows ship :class:`~repro.causal.stamp.CausalStamp` metadata
in-band (pubsub payloads / watch event frames), so the overhead is
*real wire bytes* — read ``bytes_per_msg`` against the fifo baseline.
FIFO rows attach the stamper too, but only to an experiment-side index
the auditors read; nothing extra crosses the wire.

An **inversion** is counted at the consumption edge: an applied update
whose stamp lists an in-range dependency the consumer has not applied
yet.  The claim: fifo rows show a concrete, nonzero inversion count;
causal rows drive it to zero at a bounded latency cost, with every
residual forced release attributed (``released_deadline`` +
``causal.deadline`` trace hops carrying ``waiting_for``).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro._types import KEY_MAX, KEY_MIN, KeyRange
from repro.bench.runner import ExperimentResult
from repro.causal import CausalStamper, StampIndex
from repro.cdc.publisher import CdcPublisher
from repro.edge.client import EdgeClient
from repro.edge.frontend import EdgeFrontendConfig, WatchEdgeFrontend
from repro.edge.placement import SessionPlacement
from repro.edge.session import SessionConfig
from repro.core.bridge import PartitionedIngestBridge
from repro.core.watch_system import WatchSystem
from repro.obs import TraceIndex, Tracer
from repro.obs.report import trace_summary_row
from repro.obs.trace import hops
from repro.pubsub.broker import Broker, RemotePublisher
from repro.pubsub.consumer import Consumer
from repro.pubsub.subscription import SubscriptionConfig
from repro.resilience.channel import ChannelConfig
from repro.resilience.retry import RetryPolicy
from repro.sim.kernel import Simulation, Timeout
from repro.sim.network import Network, NetworkConfig
from repro.storage.kv import MVCCStore, Mutation

DEFAULTS = dict(
    pipelines=("pubsub", "watch"),
    modes=("fifo", "causal"),
    num_chains=12,
    pair_rate=40.0,
    warmup=0.5,
    duration=10.0,
    drain=8.0,
    causal_hold=1.0,
    stamp_window=4,
    loss_rate=0.08,
    base_latency=0.005,
    net_jitter=0.002,
    retry_delay=0.06,
    stagger=0.025,
    num_clients=3,
    seed=53,
)
QUICK = dict(
    pipelines=("pubsub", "watch"),
    modes=("fifo", "causal"),
    num_chains=8,
    pair_rate=30.0,
    warmup=0.5,
    duration=4.0,
    drain=6.0,
    causal_hold=1.0,
    stamp_window=4,
    loss_rate=0.08,
    base_latency=0.005,
    net_jitter=0.002,
    retry_delay=0.06,
    stagger=0.025,
    num_clients=2,
    seed=53,
)

COLUMNS = [
    "config", "mode", "applied", "inversions", "held", "held_depth_max",
    "released_deadline", "e2e_p50_ms", "e2e_p99_ms", "bytes_per_msg",
    "meta_bytes_per_msg",
]

GATE_COLUMNS = [
    "config", "stamped", "held", "released_deps", "released_deadline",
    "hold_ms_mean", "hold_ms_max",
]


def _pair_writer(sim, store, num_chains, pair_rate, warmup, duration):
    """Commit ``data:i`` then ``ptr:i`` as two back-to-back transactions
    at ``pair_rate`` pairs/s — separate commits, so the pointer's causal
    stamp depends on the data write (same-transaction writes share a dep
    list that excludes each other).  No RNG draw: the commit stream is
    identical across every configuration."""
    interval = 1.0 / pair_rate

    def _run():
        yield Timeout(warmup)
        i = 0
        end = warmup + duration
        while sim.now() < end:
            chain = i % num_chains
            store.commit({f"data:{chain:03d}": Mutation.put({"n": i})})
            store.commit(
                {f"ptr:{chain:03d}": Mutation.put({"ref": f"data:{chain:03d}"})}
            )
            i += 1
            yield Timeout(interval)

    sim.spawn(_run(), name="pair-writer")


class _DepAuditor:
    """Order audit shared by both rails: an applied update whose stamp
    lists an in-range dep not applied yet is one inversion."""

    def __init__(self, stamps: StampIndex, in_range=None) -> None:
        self.stamps = stamps
        self.in_range = in_range
        self.applied: Dict[str, int] = {}
        self.inversions = 0

    def observe(self, key: str, version: Optional[int]) -> None:
        stamp = self.stamps.lookup(key, version)
        if stamp is not None:
            for dep_key, dep_version in stamp.deps:
                if self.in_range is not None and not self.in_range(dep_key):
                    continue
                if self.applied.get(dep_key, 0) < dep_version:
                    self.inversions += 1
                    break
        if version is not None and self.applied.get(key, 0) < version:
            self.applied[key] = version


class _AuditClient(EdgeClient):
    """Edge client that audits cross-key order as it applies updates."""

    __slots__ = ("auditor",)

    def __init__(self, sim, name, placement, stamps, **kwargs) -> None:
        super().__init__(sim, name, placement, **kwargs)
        self.auditor = _DepAuditor(stamps, in_range=self.key_range.contains)

    def _apply(self, update) -> None:
        self.auditor.observe(update.key, update.version)
        super()._apply(update)


def _terminal_count(tracer, hop) -> int:
    return sum(1 for event in tracer.log if event.hop == hop)


def run(
    pipelines=("pubsub", "watch"),
    modes=("fifo", "causal"),
    num_chains: int = 12,
    pair_rate: float = 40.0,
    warmup: float = 0.5,
    duration: float = 10.0,
    drain: float = 8.0,
    causal_hold: float = 1.0,
    stamp_window: int = 4,
    loss_rate: float = 0.08,
    base_latency: float = 0.005,
    net_jitter: float = 0.002,
    retry_delay: float = 0.06,
    stagger: float = 0.025,
    num_clients: int = 3,
    seed: int = 53,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E16 causal ordering: FIFO vs causal delivery, both "
                   "pipelines",
        claim="per-partition FIFO lets causally-later updates (ptr "
              "written after data) reach consumers first — a nonzero, "
              "reproducible inversion count on both pipelines; the "
              "causal tier drives inversions to zero by holding the "
              "pointer until its dep is delivered, at a bounded latency "
              "cost and a measurable in-band metadata cost (real wire "
              "bytes per message vs the fifo baseline)",
    )
    table = result.new_table("fifo vs causal", COLUMNS)
    gate_table = result.new_table(
        "causal gate (TraceIndex.causal_summary)", GATE_COLUMNS
    )
    retry = RetryPolicy.unbounded(base_delay=retry_delay, max_delay=0.5)

    for system in pipelines:
        for mode in modes:
            causal = mode == "causal"
            sim = Simulation(seed=seed)
            store = MVCCStore(clock=sim.now)
            tracer = Tracer(sim, name=f"{system}-{mode}")
            tracer.observe_store(store)
            # the stamper always runs (the fifo auditor needs the dep
            # index too); only causal rows hand the index to the
            # pipeline, so only causal rows ship stamps on the wire
            stamps = StampIndex()
            stamper = CausalStamper(
                window=stamp_window, index=stamps,
                tracer=tracer if causal else None,
            )
            stamper.observe_store(store)
            net = Network(sim, NetworkConfig(
                base_latency=base_latency, jitter=net_jitter,
                loss_rate=loss_rate,
            ), tracer=tracer)

            buffers = []
            if system == "pubsub":
                # race vehicle: lossy UNORDERED publish wire — a dropped
                # data publish retransmits while the ptr publish sails
                # through, so the broker appends ptr first
                wire = ChannelConfig(retry=retry, ordered=False)
                broker = Broker(sim, tracer=tracer)
                broker.create_topic("cdc", num_partitions=4)
                broker.attach_network(net, config=wire)
                producer = RemotePublisher(
                    sim, net, "cdc-producer", config=wire, tracer=tracer
                )
                CdcPublisher(
                    sim, store.history, None, "cdc",
                    publish_fn=producer.publish, tracer=tracer,
                    causal_index=stamps if causal else None,
                )
                subscription = broker.subscribe(
                    "cdc", "applier-group",
                    SubscriptionConfig(
                        delivery_mode=mode, causal_hold=causal_hold,
                        delivery_latency=0.001, delivery_jitter=0.0,
                    ),
                )
                auditor = _DepAuditor(stamps)

                def handle(message, _auditor=auditor, _tracer=tracer):
                    version = message.payload.get("version")
                    _auditor.observe(message.key, version)
                    _tracer.record(
                        hops.CACHE_APPLY, "applier",
                        key=message.key, version=version,
                    )
                    return True

                subscription.add_member(Consumer(sim, "applier-0", handle))
                if subscription.causal_buffer is not None:
                    buffers.append(subscription.causal_buffer)
                auditors = [auditor]
                terminal = hops.CACHE_APPLY
            else:
                # race vehicle: the ptr: range rides the FAST ingest
                # partition (idx 0), data: the slow one — pointers
                # systematically overtake their data upstream of the
                # (ordered) edge link
                source = WatchSystem(sim, name="src-ws", tracer=tracer)
                PartitionedIngestBridge(
                    sim, store.history, source,
                    ranges=[
                        KeyRange("m", KEY_MAX),    # ptr:* — fast
                        KeyRange(KEY_MIN, "m"),    # data:* — slow
                    ],
                    base_latency=0.002, latency_stagger=stagger,
                    progress_interval=0.25,
                )

                def store_snapshot(key_range):
                    version = store.last_version
                    return version, dict(store.scan(key_range, version))

                frontend = WatchEdgeFrontend(
                    sim, "fe0", source, store_snapshot, net=net,
                    channel_config=ChannelConfig(retry=retry, ordered=True),
                    config=EdgeFrontendConfig(
                        session=SessionConfig(
                            max_queue=100_000, initial_credits=64,
                            delivery_latency=0.001,
                        ),
                        delivery_mode=mode, causal_hold=causal_hold,
                    ),
                    tracer=tracer,
                    causal_index=stamps if causal else None,
                )
                placement = SessionPlacement(sim, [frontend])
                clients = [
                    _AuditClient(sim, f"client-{i}", placement, stamps)
                    for i in range(num_clients)
                ]
                for client in clients:
                    client.connect()
                buffers = frontend.causal_buffers
                auditors = [client.auditor for client in clients]
                terminal = hops.EDGE_DELIVER

            _pair_writer(sim, store, num_chains, pair_rate, warmup, duration)
            sim.run(until=warmup + duration + drain)

            applied = _terminal_count(tracer, terminal)
            inversions = sum(a.inversions for a in auditors)
            frames = net.metrics.counter("net.frames.sent").value
            wire_msgs = net.metrics.counter("net.payload.msgs").value
            bytes_sent = net.metrics.counter("net.bytes.sent").value
            del frames
            index = TraceIndex(tracer.log)
            summary = trace_summary_row(index)
            table.add(
                config=system,
                mode=mode,
                applied=applied,
                inversions=inversions,
                held=sum(b.held_total for b in buffers),
                held_depth_max=max(
                    (b.held_max_depth for b in buffers), default=0
                ),
                released_deadline=sum(b.released_deadline for b in buffers),
                e2e_p50_ms=summary["e2e_p50_ms"],
                e2e_p99_ms=summary["e2e_p99_ms"],
                bytes_per_msg=(
                    round(bytes_sent / wire_msgs, 1) if wire_msgs else None
                ),
                meta_bytes_per_msg=(
                    round(stamper.meta_bytes / stamper.stamped, 1)
                    if causal and stamper.stamped else 0.0
                ),
            )
            if causal:
                gate = index.causal_summary()
                gate_table.add(
                    config=system,
                    stamped=gate["stamped"],
                    held=gate["held"],
                    released_deps=gate["released_deps"],
                    released_deadline=gate["released_deadline"],
                    hold_ms_mean=gate["hold_ms_mean"],
                    hold_ms_max=gate["hold_ms_max"],
                )

    result.notes.append(
        "inversions are audited at the consumption edge: an applied "
        "update whose causal stamp lists an in-range dep the consumer "
        "has not applied yet.  fifo rows use the same stamps but only "
        "experiment-side (the auditor's index) — their wire bytes are "
        "the unstamped baseline, so bytes_per_msg(causal) - "
        "bytes_per_msg(fifo) is the real in-band metadata cost "
        "(meta_bytes_per_msg is the encoded stamp size for "
        "cross-checking).  held/released_deadline come from the live "
        "CausalBuffers; the gate table is recomputed independently from "
        "causal.* trace hops via TraceIndex.causal_summary, with every "
        "deadline release attributed to the dep it waited for.  watch "
        "causal rows can apply MORE than fifo rows: per-key supersession "
        "is itself a reorder (the newer value inherits the superseded "
        "update's queue position), so causal sessions disable coalescing "
        "and deliver the full sequence."
    )
    return result
