"""A2 (ablation) — sizing the watch system's soft state.

The watch system's only tunable hard tradeoff is its in-memory event
budget: a bigger buffer serves later-joining (or laggier) watchers from
the stream; a smaller one pushes them to resync from the store.  §4.2.2
frames this as a feature — soft state is deletable and sizeable at
will, because the store remains the source of truth.

This ablation sweeps the budget against a population of watchers that
join at random lags and measures: how many caught up from the buffer
vs. resynced, the store snapshot load that resulted, and peak memory.
The claim shape: resyncs (and snapshot load) fall monotonically as the
budget grows, memory rises, and **correctness is identical at every
point** — the knob trades resources, never consistency.
"""

from __future__ import annotations

from repro._types import KeyRange
from repro.bench.runner import ExperimentResult
from repro.core.bridge import DirectIngestBridge
from repro.core.linked_cache import LinkedCache, LinkedCacheConfig
from repro.core.watch_system import WatchSystem, WatchSystemConfig
from repro.sim.kernel import Simulation
from repro.storage.kv import MVCCStore
from repro.workloads.generators import UniformKeys, WriteStream, key_universe

DEFAULTS = dict(
    budgets=(200, 1000, 5000, 50_000),
    num_watchers=20,
    update_rate=100.0,
    duration=40.0,
    seed=107,
)
QUICK = dict(
    budgets=(200, 5000),
    num_watchers=10,
    update_rate=60.0,
    duration=20.0,
    seed=107,
)


def run(
    budgets=(200, 1000, 5000, 50_000),
    num_watchers: int = 20,
    update_rate: float = 100.0,
    duration: float = 40.0,
    seed: int = 107,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="A2 soft-state budget ablation (§4.2.2)",
        claim="the buffer budget trades memory against resync/snapshot "
              "load; every setting converges to the same correct state",
    )
    table = result.new_table(
        "budget sweep",
        ["budget_events", "watchers", "resyncs", "snapshots_taken",
         "peak_soft_state_events", "all_complete"],
    )
    keys = key_universe(80)

    for budget in budgets:
        sim = Simulation(seed=seed)
        store = MVCCStore(clock=sim.now)
        ws = WatchSystem(sim, WatchSystemConfig(max_buffered_events=budget))
        DirectIngestBridge(sim, store.history, ws, progress_interval=0.25)

        def snapshot_fn(kr):
            version = store.last_version
            return version, dict(store.scan(kr, version))

        writer = WriteStream(
            sim, store, UniformKeys(sim, keys), rate=update_rate
        )
        writer.start()

        caches = []
        # watchers join throughout the run, each trying to start from
        # version 0 (worst case: they want full history)
        for i in range(num_watchers):
            cache = LinkedCache(
                sim, ws, snapshot_fn, KeyRange.all(),
                LinkedCacheConfig(snapshot_latency=0.1),
                name=f"w{i}",
            )
            join_at = (i / num_watchers) * duration * 0.8

            def join(cache=cache):
                # ask the stream for everything since v0 first; the
                # system answers with catch-up or an immediate resync
                cache.state = "watching"
                cache._watch_handle = ws.watch_range(
                    cache.key_range, 0, cache, config=cache.config.watcher
                )

            sim.call_at(join_at, join)
            caches.append(cache)
        sim.call_at(duration, writer.stop)
        sim.run(until=duration + 15.0)

        truth = dict(store.scan())
        complete = all(
            cache.data.items_latest() == truth for cache in caches
        )
        table.add(
            budget_events=budget,
            watchers=num_watchers,
            resyncs=sum(c.resync_count for c in caches),
            snapshots_taken=sum(c.snapshots_taken for c in caches),
            peak_soft_state_events=ws.soft_state_peak_events,
            all_complete=complete,
        )

    result.notes.append(
        "watchers join over time asking for history from version 0; "
        "small budgets force resyncs (snapshot load on the store), big "
        "budgets serve from memory.  all_complete=yes in every row: the "
        "budget never affects correctness, only where recovery reads "
        "come from."
    )
    return result
