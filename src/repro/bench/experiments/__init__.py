"""Experiment modules E1–E9 (see DESIGN.md §4 for the claim map).

Modules are imported lazily so running one experiment does not require
the whole suite's import cost.
"""

from __future__ import annotations

import importlib
from typing import Dict

_MODULES: Dict[str, str] = {
    "E1": "repro.bench.experiments.e1_fanout",
    "E2": "repro.bench.experiments.e2_backlog_gc",
    "E2b": "repro.bench.experiments.e2b_compaction",
    "E3": "repro.bench.experiments.e3_invalidation_race",
    "E4": "repro.bench.experiments.e4_replication",
    "E5": "repro.bench.experiments.e5_ingestion",
    "E6": "repro.bench.experiments.e6_workqueue",
    "E6b": "repro.bench.experiments.e6b_reconcile",
    "E7": "repro.bench.experiments.e7_snapshot_stitch",
    "E8": "repro.bench.experiments.e8_efficiency",
    "E9": "repro.bench.experiments.e9_quadrants",
    "E10": "repro.bench.experiments.e10_chaos_soak",
    "E11": "repro.bench.experiments.e11_edge_storm",
    "E12": "repro.bench.experiments.e12_batching",
    "E13": "repro.bench.experiments.e13_reconcile_chaos",
    "E14": "repro.bench.experiments.e14_session_scale",
    "E15": "repro.bench.experiments.e15_broker_batch_sweep",
    "E16": "repro.bench.experiments.e16_causal_order",
    "E17": "repro.bench.experiments.e17_fleet_scale",
    # ablations of the proposed model's design choices
    "A1": "repro.bench.experiments.a1_fanout_tree",
    "A2": "repro.bench.experiments.a2_soft_state_budget",
    "A3": "repro.bench.experiments.a3_shard_isolation",
    "A4": "repro.bench.experiments.a4_replica_snapshots",
}


def get(experiment_id: str):
    """Import and return the module for an experiment id (e.g. 'E3')."""
    return importlib.import_module(_MODULES[experiment_id])


def all_ids():
    return list(_MODULES)
