"""E6 — §3.2.4/§4.3: affinitized work with dynamically sharded workers.

A stream of keyed tasks (with key locality, occasional poison tasks,
and worker churn halfway through) runs against:

- ``pubsub-random`` — consumer group, random routing: no affinity at
  all; every worker's state cache thrashes.
- ``pubsub-key``    — consumer group, key-hash routing: affine while
  membership is stable, but the §3.1 complaint holds: the *whole*
  key-to-worker map reshuffles on any membership change, and the
  mapping can never follow an application auto-sharder.  FIFO delivery
  also head-of-line blocks normal tasks behind poison ones.
- ``watch``         — task rows in a store, workers auto-sharded over
  key ranges, watching their ranges, prioritizing normal tasks.  A
  membership change moves only the affected ranges, and poison tasks
  cannot block normal ones.

Measured: completed tasks, warm-state fraction (affinity), p99 latency
of normal tasks (HoL), and completion guarantees across the churn.
"""

from __future__ import annotations

from repro.bench.runner import ExperimentResult
from repro.core.bridge import PartitionedIngestBridge, even_ranges
from repro.core.watch_system import WatchSystem
from repro.pubsub.broker import Broker
from repro.pubsub.subscription import RoutingPolicy
from repro.sharding.autosharder import AutoSharder, AutoSharderConfig
from repro.sim.kernel import Simulation
from repro.storage.kv import MVCCStore
from repro.workqueue.pubsub_worker import PubsubWorkerPool
from repro.workqueue.watch_worker import WatchWorkerPool
from repro.workloads.generators import TaskStream, key_universe

DEFAULTS = dict(
    systems=("pubsub-random", "pubsub-key", "watch"),
    num_workers=4,
    num_keys=120,
    task_rate=60.0,
    work=0.01,
    cold_penalty=0.05,
    poison_fraction=0.01,
    poison_work=2.0,
    duration=60.0,
    drain=40.0,
    churn=True,
    seed=71,
)
QUICK = dict(
    systems=("pubsub-key", "watch"),
    num_workers=3,
    num_keys=60,
    task_rate=40.0,
    work=0.01,
    cold_penalty=0.05,
    poison_fraction=0.01,
    poison_work=2.0,
    duration=25.0,
    drain=25.0,
    churn=True,
    seed=71,
)


def run(
    systems=("pubsub-random", "pubsub-key", "watch"),
    num_workers: int = 4,
    num_keys: int = 120,
    task_rate: float = 60.0,
    work: float = 0.01,
    cold_penalty: float = 0.05,
    poison_fraction: float = 0.01,
    poison_work: float = 2.0,
    duration: float = 60.0,
    drain: float = 40.0,
    churn: bool = True,
    seed: int = 71,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E6 work queueing and balancing (§3.2.4 / §4.3)",
        claim="consumer groups cannot give dynamically sharded affinity "
              "(state caches thrash, wholesale reshuffles on churn) and "
              "FIFO delivery head-of-line blocks; watch + auto-sharding "
              "keeps state warm and prioritizes around poison tasks",
    )
    table = result.new_table(
        "systems",
        ["system", "submitted", "completed", "warm_frac",
         "normal_p50_s", "normal_p99_s", "all_done"],
    )

    for system in systems:
        sim = Simulation(seed=seed)
        if system.startswith("pubsub"):
            broker = Broker(sim)
            routing = (
                RoutingPolicy.KEY if system == "pubsub-key"
                else RoutingPolicy.RANDOM
            )
            pool = PubsubWorkerPool(
                sim, broker, num_workers=num_workers, routing=routing,
                cold_penalty=cold_penalty, ack_timeout=30.0,
            )
            submit = pool.submit
            if churn:
                sim.call_at(duration * 0.5, lambda: pool.crash_worker("worker-0"))
                sim.call_at(
                    duration * 0.5,
                    lambda: pool.add_worker(f"worker-{num_workers}"),
                )
        else:
            store = MVCCStore(clock=sim.now)
            ws = WatchSystem(sim)
            PartitionedIngestBridge(
                sim, store.history, ws, even_ranges(8), progress_interval=0.2
            )
            sharder = AutoSharder(
                sim, [f"worker-{i}" for i in range(num_workers)],
                AutoSharderConfig(notify_latency=0.02, notify_jitter=0.02),
                auto_rebalance=False,
            )
            pool = WatchWorkerPool(
                sim, store, ws, sharder, num_workers=num_workers,
                cold_penalty=cold_penalty, prioritize=True,
            )
            submit = pool.submit
            if churn:
                sim.call_at(duration * 0.5, lambda: pool.crash_worker("worker-0"))
                sim.call_at(
                    duration * 0.5,
                    lambda: pool.add_worker(f"worker-{num_workers}"),
                )

        stream = TaskStream(
            sim, submit, key_universe(num_keys), rate=task_rate,
            work=work, poison_fraction=poison_fraction,
            poison_work=poison_work, locality=0.7,
        )
        stream.start()
        sim.call_at(duration, stream.stop)
        sim.run(until=duration + drain)

        stats = pool.stats
        table.add(
            system=system,
            submitted=stream.submitted,
            completed=stats.completed,
            warm_frac=round(stats.warm_fraction, 3),
            normal_p50_s=stats.normal_latency.p50,
            normal_p99_s=stats.normal_latency.p99,
            all_done=(stats.completed >= stream.submitted),
        )

    result.notes.append(
        "warm_frac is the fraction of tasks finding their key's state "
        "cached.  Churn at t=duration/2: one worker crashes, one joins. "
        "pubsub-key reshuffles every key's affinity at that moment; the "
        "auto-sharder moves only the dead worker's ranges."
    )
    return result
