"""E15 — broker batch sweep: throughput/latency vs batch size × publish rate.

The Kafka-vs-RabbitMQ study (Dobbelaere & Sheykh Esmaili) characterizes
a broker with one canonical table: hold the workload, sweep producer
batch size across a grid of publish rates, and read off where
throughput saturates and what the batching buys costs in latency.  This
experiment reproduces that measurement shape on both of our delivery
pipelines:

- **pubsub** — CDC group-commit → broker → free-consumer fan-out with
  grouped delivery.  The consumer charges a fixed dispatch cost per
  handler invocation, so the unbatched column saturates once the
  publish rate exceeds ``1 / (dispatch + service)`` records/s; larger
  batches amortize the dispatch cost and push the saturation knee to
  higher rates — the throughput half of the published table.
- **watch** — ingest bridge → reliable relay with group frames → cache
  nodes.  No per-record dispatch charge; here the grid shows the other
  half: batching cuts frames/retransmits/bytes at every rate while the
  linger window sets the latency floor at low rates.

Each cell also reports real wire volume (``net.bytes.*`` from the
:mod:`repro.sim.wire` codec): bytes per frame grows with the batch while
total bytes fall as the per-message envelope collapses.

The workload, builders, and retry policy are shared with E12 so the two
experiments stay comparable; everything runs on the sim clock with a
seeded RNG, so the table is byte-deterministic for a given seed.
"""

from __future__ import annotations

from repro.bench.runner import ExperimentResult
from repro.bench.experiments.e12_batching import (
    _RETRY,
    _metric_sum,
    _terminal_stats,
    _txn_writer,
)
from repro.cache.invalidation import (
    FreeInvalidationPipeline,
    InvalidationMode,
    PubsubCacheNode,
)
from repro.cache.node import CacheNodeConfig
from repro.cache.watch_cache import WatchCacheNode
from repro.core.bridge import DirectIngestBridge
from repro.core.relay import ReliableFanoutEndpoint, ReliableFanoutLink
from repro.core.linked_cache import LinkedCacheConfig
from repro.core.watch_system import WatchSystem
from repro.obs import TraceIndex, Tracer
from repro.obs.report import trace_summary_row
from repro.obs.trace import hops
from repro.pubsub.broker import Broker
from repro.resilience.channel import ChannelConfig
from repro.sharding.autosharder import AutoSharder, AutoSharderConfig
from repro.sim.kernel import Simulation
from repro.sim.network import Network, NetworkConfig
from repro.storage.kv import MVCCStore
from repro.transport import BatchConfig
from repro.workloads.generators import key_universe

DEFAULTS = dict(
    pipelines=("pubsub", "watch"),
    rates_rps=(60.0, 240.0, 480.0),
    batch_sizes=(1, 8, 64),
    linger_ms=5.0,
    fanout=3,
    num_keys=64,
    txn_size=4,
    burst=8,
    duration=10.0,
    drain=15.0,
    loss_rate=0.01,
    base_latency=0.005,
    net_jitter=0.002,
    dispatch_cost=0.004,
    record_service=0.0005,
    seed=47,
)
QUICK = dict(
    pipelines=("pubsub", "watch"),
    rates_rps=(60.0, 320.0),
    batch_sizes=(1, 16),
    linger_ms=5.0,
    fanout=2,
    num_keys=48,
    txn_size=4,
    burst=8,
    duration=5.0,
    drain=8.0,
    loss_rate=0.01,
    base_latency=0.005,
    net_jitter=0.002,
    dispatch_cost=0.004,
    record_service=0.0005,
    seed=47,
)

COLUMNS = [
    "config", "rate_rps", "batch", "applied", "throughput_rps",
    "e2e_p50_ms", "e2e_p99_ms", "frames", "msgs_per_frame",
    "bytes_per_frame", "bytes_per_msg", "retransmits",
]


def run(
    pipelines=("pubsub", "watch"),
    rates_rps=(60.0, 240.0, 480.0),
    batch_sizes=(1, 8, 64),
    linger_ms: float = 5.0,
    fanout: int = 3,
    num_keys: int = 64,
    txn_size: int = 4,
    burst: int = 8,
    duration: float = 10.0,
    drain: float = 15.0,
    loss_rate: float = 0.01,
    base_latency: float = 0.005,
    net_jitter: float = 0.002,
    dispatch_cost: float = 0.004,
    record_service: float = 0.0005,
    seed: int = 47,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E15 broker batch sweep: throughput/latency vs batch "
                   "size across publish rates",
        claim="the canonical broker characterization table reproduces on "
              "both pipelines: unbatched delivery saturates at the "
              "dispatch-bound rate (throughput plateaus, latency "
              "explodes), batching pushes the knee past the highest "
              "rate at a bounded linger-window latency cost, and real "
              "wire bytes per message fall as frames fill",
    )
    table = result.new_table("batch sweep", COLUMNS)
    keys = key_universe(num_keys)

    for system in pipelines:
        for rate in rates_rps:
            for batch in batch_sizes:
                batched = batch > 1
                batch_cfg = (
                    BatchConfig(max_batch=batch, max_linger=linger_ms / 1000.0)
                    if batched else None
                )
                sim = Simulation(seed=seed)
                store = MVCCStore(clock=sim.now)
                for i, key in enumerate(keys):
                    store.put(key, {"v": -1, "j": i})
                tracer = Tracer(sim, name=f"{system}-r{rate:g}-b{batch}")
                tracer.observe_store(store)
                sharder = AutoSharder(
                    sim, [f"node-{i}" for i in range(fanout)],
                    AutoSharderConfig(notify_latency=0.01, notify_jitter=0.01),
                    auto_rebalance=False,
                )
                net = Network(sim, NetworkConfig(
                    base_latency=base_latency, jitter=net_jitter,
                    loss_rate=loss_rate,
                ), tracer=tracer)
                registries = [net.metrics]

                if system == "pubsub":
                    channel_cfg = ChannelConfig(retry=_RETRY, batch=batch_cfg)
                    broker = Broker(sim, tracer=tracer)
                    registries.append(broker.metrics)
                    nodes = [
                        PubsubCacheNode(
                            sim, f"node-{i}", store, InvalidationMode.NAIVE,
                            config=CacheNodeConfig(fetch_latency=0.01),
                            tracer=tracer,
                        )
                        for i in range(fanout)
                    ]
                    FreeInvalidationPipeline(
                        sim, store, broker, sharder, nodes,
                        network=net, resilience=channel_cfg, tracer=tracer,
                        delivery_batch=batch,
                        batch_overhead=dispatch_cost if batched else 0.0,
                        group_commit=batched,
                        service_time=record_service + (
                            0.0 if batched else dispatch_cost
                        ),
                    )
                    terminal = hops.CACHE_APPLY
                else:
                    channel_cfg = ChannelConfig(
                        retry=_RETRY, ordered=True, batch=batch_cfg,
                    )
                    ws_local = WatchSystem(sim, name="src-ws", tracer=tracer)
                    DirectIngestBridge(
                        sim, store.history, ws_local, progress_interval=0.25
                    )
                    ws_remote = WatchSystem(sim, name="edge-ws", tracer=tracer)
                    ReliableFanoutEndpoint(
                        sim, net, "fanout-endpoint", ws_remote,
                        config=channel_cfg, tracer=tracer,
                    )
                    ReliableFanoutLink(
                        sim, ws_local, net, "fanout-link",
                        remote="fanout-endpoint", config=channel_cfg,
                        tracer=tracer,
                    )
                    nodes = [
                        WatchCacheNode(
                            sim, f"node-{i}", store, ws_remote,
                            cache_config=LinkedCacheConfig(
                                snapshot_latency=0.02
                            ),
                            tracer=tracer,
                        )
                        for i in range(fanout)
                    ]
                    for node in nodes:
                        sharder.subscribe(node.on_assignment)
                    terminal = hops.WATCH_APPLY

                # rate is records/s; the writer commits txn_size-record
                # transactions, so scale the commit rate to match
                _txn_writer(
                    sim, store, keys, txn_size, rate / txn_size,
                    duration, burst,
                )
                sim.run(until=duration + drain)

                applied, span = _terminal_stats(tracer, terminal)
                frames = net.metrics.counter("net.frames.sent").value
                wire_msgs = net.metrics.counter("net.payload.msgs").value
                bytes_sent = net.metrics.counter("net.bytes.sent").value
                summary = trace_summary_row(TraceIndex(tracer.log))
                table.add(
                    config=system,
                    rate_rps=rate,
                    batch=batch,
                    applied=applied,
                    throughput_rps=(
                        round(applied / span, 1) if span else None
                    ),
                    e2e_p50_ms=summary["e2e_p50_ms"],
                    e2e_p99_ms=summary["e2e_p99_ms"],
                    frames=frames,
                    msgs_per_frame=(
                        round(wire_msgs / frames, 2) if frames else None
                    ),
                    bytes_per_frame=(
                        round(bytes_sent / frames, 1) if frames else None
                    ),
                    bytes_per_msg=(
                        round(bytes_sent / wire_msgs, 1) if wire_msgs else None
                    ),
                    retransmits=_metric_sum(registries, ".retransmits"),
                )

    result.notes.append(
        "measurement shape after the Kafka-vs-RabbitMQ study: one row "
        "per (pipeline, publish rate, producer batch size) cell, "
        "throughput_rps read at the terminal apply hop and latency "
        "percentiles end-to-end from commit to apply.  rate_rps is the "
        "offered record rate; where throughput_rps sits below it the "
        "cell is past its saturation knee and the latency columns show "
        "queueing, not service time.  bytes_per_frame/bytes_per_msg are "
        "real encoded wire volume (net.bytes.*, repro.sim.wire)."
    )
    return result
