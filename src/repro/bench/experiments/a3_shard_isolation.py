"""A3 (ablation) — sharding the watch layer: load spread and failure
isolation.

§4.4/§5: a standalone watch system must scale; sharding it over key
ranges is the obvious design.  This ablation measures what sharding
buys: ingest load spread across shards, and — the interesting part —
*failure isolation*: when one shard's soft state is lost, only the
watchers overlapping that shard resync, instead of every watcher in
the system (the monolithic case).  Correctness is identical: everyone
converges either way.
"""

from __future__ import annotations

from repro._types import KeyRange
from repro.bench.runner import ExperimentResult
from repro.core.bridge import DirectIngestBridge, even_ranges
from repro.core.linked_cache import LinkedCache, LinkedCacheConfig
from repro.core.sharded_watch import ShardedWatchSystem
from repro.core.watch_system import WatchSystem
from repro.sim.kernel import Simulation
from repro.storage.kv import MVCCStore
from repro.workloads.generators import UniformKeys, WriteStream, key_universe

DEFAULTS = dict(
    shard_counts=(1, 4, 8),
    num_watchers=24,
    update_rate=80.0,
    duration=30.0,
    seed=109,
)
QUICK = dict(
    shard_counts=(1, 4),
    num_watchers=12,
    update_rate=50.0,
    duration=15.0,
    seed=109,
)


def run(
    shard_counts=(1, 4, 8),
    num_watchers: int = 24,
    update_rate: float = 80.0,
    duration: float = 30.0,
    seed: int = 109,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="A3 sharded watch layer (§4.4/§5 ablation)",
        claim="sharding the watch system spreads ingest load and "
              "contains a shard's soft-state loss to its own watchers; "
              "correctness is unchanged",
    )
    table = result.new_table(
        "shard sweep",
        ["shards", "watchers", "max_shard_load_frac", "watchers_resynced",
         "resync_fraction", "all_complete"],
    )
    keys = key_universe(120)
    watcher_ranges = even_ranges(num_watchers)

    for shards in shard_counts:
        sim = Simulation(seed=seed)
        store = MVCCStore(clock=sim.now)
        if shards == 1:
            ws = WatchSystem(sim)
        else:
            ws = ShardedWatchSystem(sim, even_ranges(shards))
        DirectIngestBridge(sim, store.history, ws, progress_interval=0.25)

        def snapshot_fn(kr):
            version = store.last_version
            return version, dict(store.scan(kr, version))

        caches = []
        for i, key_range in enumerate(watcher_ranges):
            cache = LinkedCache(
                sim, ws, snapshot_fn, key_range,
                LinkedCacheConfig(snapshot_latency=0.05), name=f"w{i}",
            )
            caches.append(cache)
            cache.start()
        writer = WriteStream(
            sim, store, UniformKeys(sim, keys), rate=update_rate
        )
        sim.call_after(0.5, writer.start)

        # lose one unit of soft state mid-run
        def fail():
            if shards == 1:
                ws.wipe()
            else:
                ws.wipe_shard(0)

        sim.call_at(duration * 0.5, fail)
        sim.call_at(duration, writer.stop)
        sim.run(until=duration + 10.0)

        resynced = sum(1 for c in caches if c.resync_count > 0)
        if shards == 1:
            max_load_frac = 1.0
        else:
            loads = ws.shard_loads()
            total = sum(loads) or 1
            max_load_frac = max(loads) / total
        complete = all(
            cache.data.items_latest()
            == dict(store.scan(cache.key_range))
            for cache in caches
        )
        table.add(
            shards=shards,
            watchers=num_watchers,
            max_shard_load_frac=round(max_load_frac, 3),
            watchers_resynced=resynced,
            resync_fraction=round(resynced / num_watchers, 3),
            all_complete=complete,
        )

    result.notes.append(
        "one soft-state loss at t=duration/2: monolithic (shards=1) "
        "resyncs every watcher; with S shards only ~1/S of watchers "
        "are touched.  max_shard_load_frac shows ingest load spreading."
    )
    return result
