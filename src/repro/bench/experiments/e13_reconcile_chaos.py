"""E13 — self-stabilization: corruption injection vs the reconcile plane.

The delivery pipelines are *event*-triggered: they only ever act on
change notifications, so state mutated behind their backs — bit-rot,
operator error, a bad restore, a forged routing map — is invisible to
them forever.  This experiment makes that failure mode concrete and
then measures the repair the reconciliation plane (``repro.reconcile``)
provides:

A combined topology runs pubsub CDC replication (broker → version-
checked applier → :class:`~repro.replication.target.ReplicaStore`) and
a watch-based edge tier (frontends, durable-cursor clients, sharder-
driven placement) off one source store.  A
:class:`~repro.reconcile.corruptor.StateCorruptor` injects every
corruption class it knows at seeded random points — torn replica maps,
rewound and forged replica cursors while traffic is live, forged edge
reconnect cursors, half-open (orphaned) sessions, a stale forged
assignment — each injection traced as ``corrupt.inject``.

Two configurations:

- ``pubsub-only`` — the pipelines run alone.  Every corruption class
  leaves permanent damage: diverged replica keys, clients that
  silently skipped a gap or stopped receiving anything, a routing map
  the sharder never re-stamps.  The final state is *illegal* and
  nothing inside the pipelines ever notices.
- ``pubsub+reconciler`` — an
  :class:`~repro.reconcile.anti_entropy.AntiEntropyReconciler` (per
  key-range scope) and an
  :class:`~repro.reconcile.edge.EdgeReconciler` (per client +
  placement) tick alongside.  Because they are *level*-triggered —
  Plan compares actual state against desired every round — each class
  is detected and repaired within a bounded number of rounds, every
  repair traced as ``reconcile.repair`` and attributed by
  :meth:`~repro.obs.index.TraceIndex.repair_summary` to the injection
  it fixed.

Legality at the end of the run means: replica state equals the source
head state, every cursor (replica watermark, per-key versions, client
reconnect cursors) is within the source head, no client is stale or
holding a half-open session, and the installed assignment carries the
sharder's own generation.  The reconciler row must be legal with every
class repaired inside the round bound; the control row must not.
"""

from __future__ import annotations

import math

from repro._types import KeyRange
from repro.bench.runner import ExperimentResult
from repro.cdc.publisher import CdcPublisher
from repro.core.bridge import DirectIngestBridge
from repro.core.watch_system import WatchSystem
from repro.edge.client import EdgeClient
from repro.edge.frontend import EdgeFrontendConfig, WatchEdgeFrontend
from repro.edge.placement import SessionPlacement
from repro.edge.session import SessionConfig, SlowConsumerPolicy
from repro.obs import TraceIndex, Tracer
from repro.pubsub.broker import Broker
from repro.reconcile import (
    CORRUPTION_CLASSES,
    AntiEntropyReconciler,
    EdgeReconciler,
    ReconcilerConfig,
    StateCorruptor,
    shard_scopes,
)
from repro.replication.appliers import VersionCheckedApplier
from repro.replication.checker import SnapshotChecker
from repro.replication.target import CursorCorruption, ReplicaStore
from repro.sim.kernel import Simulation
from repro.storage.kv import MVCCStore
from repro.workloads.generators import UniformKeys, WriteStream, key_universe

DEFAULTS = dict(
    configs=("pubsub-only", "pubsub+reconciler"),
    num_frontends=2,
    num_clients=8,
    num_keys=60,
    update_rate=20.0,
    duration=30.0,
    settle=30.0,
    injections_per_class=2,
    inject_window=6.0,
    num_shards=4,
    tick=0.5,
    seed=97,
)
QUICK = dict(
    configs=("pubsub-only", "pubsub+reconciler"),
    num_frontends=2,
    num_clients=6,
    num_keys=40,
    update_rate=15.0,
    duration=14.0,
    settle=20.0,
    injections_per_class=1,
    inject_window=4.0,
    num_shards=4,
    tick=0.5,
    seed=97,
)

#: classes injected after traffic stops (their damage is to data at
#: rest; injecting mid-burst would race ordinary replication catch-up)
_AT_REST = ("replica-map-tear", "replica-cursor-rewind")


def run(
    configs=("pubsub-only", "pubsub+reconciler"),
    num_frontends: int = 2,
    num_clients: int = 8,
    num_keys: int = 60,
    update_rate: float = 20.0,
    duration: float = 30.0,
    settle: float = 30.0,
    injections_per_class: int = 2,
    inject_window: float = 6.0,
    num_shards: int = 4,
    tick: float = 0.5,
    seed: int = 97,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E13 self-stabilization: arbitrary-state corruption "
                   "vs the Plan/Execute reconciliation plane",
        claim="event-triggered pipelines never notice state corrupted "
              "behind their backs (the control row ends illegal and "
              "diverged); a level-triggered reconciler plane converges "
              "every corruption class back to a checker-verified legal "
              "state within a bounded number of reconcile rounds, with "
              "every repair trace-attributed to its corruption",
    )
    convergence_table = result.new_table(
        "convergence",
        ["config", "injections", "repairs", "attributed", "cursor_faults",
         "diverged_keys", "stale_clients", "orphans", "cursors_ok",
         "placement_ok", "legal", "rounds_max"],
    )
    classes_table = result.new_table(
        "corruption classes",
        ["config", "class", "injected", "repaired", "unrepaired", "rounds"],
    )
    tracers = {}
    result.artifacts["tracers"] = tracers
    keys = key_universe(num_keys)
    client_names = [
        f"{chr(ord('a') + (26 * i) // num_clients)}c{i:02d}"
        for i in range(num_clients)
    ]

    for config_name in configs:
        with_reconciler = config_name == "pubsub+reconciler"
        sim = Simulation(seed=seed)
        store = MVCCStore(clock=sim.now)
        tracer = Tracer(sim, name=config_name)
        tracers[config_name] = tracer
        tracer.observe_store(store)

        # replication pipeline: CDC topic -> version-checked applier
        broker = Broker(sim, tracer=tracer)
        broker.create_topic("cdc", num_partitions=4)
        CdcPublisher(sim, store.history, broker, "cdc", tracer=tracer)
        replica = ReplicaStore()
        checker = SnapshotChecker(store)
        checker.attach_target(replica)
        applier = VersionCheckedApplier(
            sim, broker, "cdc", replica, workers=4, service_time=0.0005,
        )

        # edge tier: watch frontends, placement, durable-cursor clients
        watch = WatchSystem(sim, name="src-ws", tracer=tracer)
        DirectIngestBridge(
            sim, store.history, watch, latency=0.002, progress_interval=0.25,
        )

        def store_snapshot(key_range, store=store):
            version = store.last_version
            return version, dict(store.scan(key_range, version))

        frontend_config = EdgeFrontendConfig(
            session=SessionConfig(
                policy=SlowConsumerPolicy.COALESCE, max_queue=256,
                initial_credits=4, delivery_latency=0.001,
            ),
            catchup_threshold=100,
        )
        frontends = [
            WatchEdgeFrontend(
                sim, f"fe{i}", watch, store_snapshot,
                config=frontend_config, tracer=tracer,
            )
            for i in range(num_frontends)
        ]
        placement = SessionPlacement(sim, frontends)
        clients = []
        for name in client_names:
            client = EdgeClient(
                sim, name, placement, service_time=0.002, reconnect_delay=0.3,
            )
            clients.append(client)
            sim.call_after(sim.rng.uniform(0.0, 0.5), client.connect)

        writer = WriteStream(
            sim, store, UniformKeys(sim, keys), rate=update_rate,
            value_fn=lambda n: {"v": n},
        )
        writer.start()
        sim.call_at(duration, writer.stop)

        # the corruptor, and a seeded injection schedule: at-rest
        # classes land after traffic stops, the rest mid-traffic
        shards = shard_scopes(num_shards)
        corruptor = StateCorruptor(
            sim, tracer=tracer, source=store, replica=replica, shards=shards,
            clients=clients, frontends=frontends, sharder=placement.sharder,
        )
        for cls in CORRUPTION_CLASSES:
            for _ in range(injections_per_class):
                if cls in _AT_REST:
                    at = duration + 1.0 + sim.rng.uniform(0.0, inject_window)
                else:
                    at = sim.rng.uniform(0.2 * duration, 0.8 * duration)
                sim.call_at(at, lambda cls=cls: corruptor.inject(cls))

        reconcilers = []
        if with_reconciler:
            config = ReconcilerConfig(tick=tick)
            reconcilers = [
                AntiEntropyReconciler(
                    sim, store, replica, shards, checker=checker,
                    config=config, tracer=tracer,
                ),
                EdgeReconciler(
                    sim, clients, frontends,
                    head_fn=lambda store=store: store.last_version,
                    sharder=placement.sharder, config=config, tracer=tracer,
                ),
            ]
            for reconciler in reconcilers:
                reconciler.start()

        sim.run(until=duration + settle)

        # ------------------------------------------------------------------
        # legality audit against the source head
        head = store.last_version
        latest = dict(store.scan(KeyRange.all(), head))
        replica_state = replica.items()
        diverged_keys = sum(
            1 for key in set(latest) | set(replica_state)
            if replica_state.get(key) != latest.get(key)
        )
        try:
            replica.verify_cursor(head)
            replica_cursors_ok = True
        except CursorCorruption:
            replica_cursors_ok = False
        stale_clients = orphans = 0
        client_cursors_ok = True
        for client in clients:
            session = client.session
            if session is not None and session.active and not any(
                frontend.sessions.get(client.name) is session
                for frontend in frontends
            ):
                orphans += 1
            if client.cursor > head:
                client_cursors_ok = False
            client.stop()
            client.finalize()
            if client.state != latest:
                stale_clients += 1
        cursors_ok = replica_cursors_ok and client_cursors_ok
        placement_ok = (
            placement.sharder.assignment.generation
            == placement.sharder.generation
        )
        legal = (
            diverged_keys == 0 and cursors_ok and stale_clients == 0
            and orphans == 0 and placement_ok
        )

        index = TraceIndex(tracer.log)
        summary = index.repair_summary()
        rounds_max = 0
        for cls in sorted(summary["classes"]):
            row = summary["classes"][cls]
            rounds = (
                math.ceil(row["max_lag_s"] / tick) if row["repaired"] else 0
            )
            rounds_max = max(rounds_max, rounds)
            classes_table.add(
                config=config_name,
                **{"class": cls},
                injected=row["injected"],
                repaired=row["repaired"],
                unrepaired=row["unrepaired"],
                rounds=rounds,
            )
        convergence_table.add(
            config=config_name,
            injections=corruptor.injections,
            repairs=summary["repairs"],
            attributed=summary["repairs_attributed"],
            cursor_faults=applier.cursor_faults,
            diverged_keys=diverged_keys,
            stale_clients=stale_clients,
            orphans=orphans,
            cursors_ok=cursors_ok,
            placement_ok=placement_ok,
            legal=legal,
            rounds_max=rounds_max,
        )

    result.notes.append(
        "legal == True means the end state passed the full audit: "
        "replica state byte-equal to the source head, all cursors "
        "(replica watermark, per-key versions, client reconnect "
        "cursors) within the head, no stale clients, no half-open "
        "sessions, assignment generation consistent.  rounds is the "
        "injection-to-repair lag in reconcile ticks (ceil(lag/tick)); "
        "the control row's corruption stays unrepaired forever because "
        "nothing event-triggered ever observes it — the reconcile "
        "plane's level-triggered Plan pass is what turns invisible "
        "corruption into bounded-time repair."
    )
    return result
