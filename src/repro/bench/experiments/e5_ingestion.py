"""E5 — §3.2.3: event ingestion and fanout under a slow consumer path.

Receivers "are expected to get all events from the publisher promptly
to enable downstream analysis, such as fraud detection or sensor-based
alerting.  However ... head-of-line blocking can occur and large
backlogs can develop."

Setup: sensors emit events; most are cheap to process, but events from
one pathological sensor group take ~1000x longer (a poisoned analysis
path).  A single consumer pipeline handles all sensors.

- pubsub: the consumer group's FIFO delivery forces cheap events to
  queue behind expensive ones — p99 delivery-to-processing latency for
  *unaffected* sensors explodes, and with bounded retention the backlog
  turns into silent loss.
- watch over an ingestion store: the consumer watches the event store
  and *chooses* what to process next (cheap alerts first, poisoned
  sensors deprioritized); unaffected sensors stay fast, and nothing is
  lost because the store — not the notification channel — is the
  source of truth for catch-up.
"""

from __future__ import annotations

from typing import Dict, List

from repro._types import KEY_MAX, KEY_MIN
from repro.bench.runner import ExperimentResult
from repro.core.api import FnWatchCallback
from repro.core.store_watch import StoreWatch
from repro.pubsub.broker import Broker
from repro.pubsub.consumer import Consumer
from repro.pubsub.log import RetentionPolicy
from repro.pubsub.subscription import RoutingPolicy, SubscriptionConfig
from repro.sim.kernel import Simulation, Timeout
from repro.sim.metrics import Histogram
from repro.storage.timeseries import IngestionStore

DEFAULTS = dict(
    event_rate=200.0,
    # utilization ~0.8: both pipelines CAN finish; the difference is
    # purely who waits behind the poison events
    poison_fraction=0.004,
    cheap_work=0.002,
    poison_work=1.0,
    duration=60.0,
    drain=60.0,
    num_sensors=50,
    seed=67,
)
QUICK = dict(
    event_rate=100.0,
    poison_fraction=0.02,
    cheap_work=0.002,
    poison_work=1.0,
    duration=20.0,
    drain=30.0,
    num_sensors=20,
    seed=67,
)


def run(
    event_rate: float = 200.0,
    poison_fraction: float = 0.02,
    cheap_work: float = 0.002,
    poison_work: float = 1.0,
    duration: float = 60.0,
    drain: float = 60.0,
    num_sensors: int = 50,
    seed: int = 67,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E5 ingestion fanout with a poisoned path (§3.2.3)",
        claim="pubsub FIFO delivery head-of-line blocks cheap events "
              "behind expensive ones; watching the ingestion store lets "
              "the consumer prioritize, keeping unaffected events fast",
    )
    table = result.new_table(
        "pipelines",
        ["system", "events", "cheap_done", "cheap_p50_s", "cheap_p99_s",
         "poison_done", "backlog_end"],
    )
    poison_sensor = "sensor-00"  # all poison comes from one sensor

    def make_events(sim, emit):
        def gen():
            n = 0
            deadline = sim.now() + duration
            while sim.now() < deadline:
                sensor = f"sensor-{sim.rng.randrange(num_sensors):02d}"
                poison = (
                    sensor == poison_sensor
                    and sim.rng.random() < poison_fraction * num_sensors
                )
                emit(sensor, {"n": n, "t": sim.now(), "poison": poison})
                n += 1
                yield Timeout(1.0 / event_rate)

        sim.spawn(gen(), name="sensors")

    # ------------------------------ pubsub -----------------------------
    sim = Simulation(seed=seed)
    broker = Broker(sim)
    broker.create_topic("events", num_partitions=4,
                        retention=RetentionPolicy(max_age=3600.0))
    group = broker.consumer_group(
        "events", "analysis",
        SubscriptionConfig(routing=RoutingPolicy.PARTITION, ack_timeout=3600.0),
    )
    cheap_latency = Histogram("cheap")
    done = {"cheap": 0, "poison": 0}

    def service_time(message):
        return poison_work if message.payload["poison"] else cheap_work

    def handler(message):
        if message.payload["poison"]:
            done["poison"] += 1
        else:
            done["cheap"] += 1
            cheap_latency.observe(sim.now() - message.payload["t"])
        return True

    consumer = Consumer(sim, "analysis-0", handler=handler,
                        service_time_fn=service_time)
    group.join(consumer)
    make_events(sim, lambda sensor, payload: broker.publish("events", sensor, payload))
    sim.run(until=duration + drain)
    table.add(
        system="pubsub", events=broker.topic("events").total_messages_published,
        cheap_done=done["cheap"], cheap_p50_s=cheap_latency.p50,
        cheap_p99_s=cheap_latency.p99, poison_done=done["poison"],
        backlog_end=group.backlog(),
    )

    # ------------------------------ watch ------------------------------
    sim = Simulation(seed=seed)
    store = IngestionStore(clock=sim.now)
    watch = StoreWatch(sim, store)
    cheap_latency_w = Histogram("cheap")
    done_w = {"cheap": 0, "poison": 0}
    #: the consumer's own queues: it drains cheap first (prioritization)
    cheap_queue: List = []
    poison_queue: List = []

    def on_event(event):
        payload = event.mutation.value
        (poison_queue if payload["poison"] else cheap_queue).append(payload)

    watch.watch(KEY_MIN, KEY_MAX, 0, FnWatchCallback(on_event=on_event))

    def worker():
        while True:
            if cheap_queue:
                payload = cheap_queue.pop(0)
                yield Timeout(cheap_work)
                done_w["cheap"] += 1
                cheap_latency_w.observe(sim.now() - payload["t"])
            elif poison_queue:
                payload = poison_queue.pop(0)
                yield Timeout(poison_work)
                done_w["poison"] += 1
            else:
                yield Timeout(0.005)

    sim.spawn(worker(), name="analysis")
    make_events(sim, lambda sensor, payload: store.append(sensor, payload))
    sim.run(until=duration + drain)
    table.add(
        system="watch", events=len(store),
        cheap_done=done_w["cheap"], cheap_p50_s=cheap_latency_w.p50,
        cheap_p99_s=cheap_latency_w.p99, poison_done=done_w["poison"],
        backlog_end=len(cheap_queue) + len(poison_queue),
    )

    result.notes.append(
        "identical total work in both pipelines; the watch consumer "
        "reorders (cheap first) because the events sit in a queryable "
        "store rather than a delivery pipe — §4.3's 'prioritize "
        "entities, fully mitigating head-of-line blocking'."
    )
    return result
