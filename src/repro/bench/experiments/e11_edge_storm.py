"""E11 — edge delivery tier under a reconnect storm with slow clients.

The edge tier (``repro.edge``) terminates client sessions on frontend
nodes so that neither pipeline's *source* tier ever sees per-client
load.  This experiment drives many clients — a fraction of them slow —
through a mass-disconnect/reconnect window mid-run, and contrasts the
two pipelines' slow-consumer stories (§3.2, §4.4):

- ``watch-coalesce`` — frontends replicate via a
  :class:`~repro.core.relay.WatchRelay`; sessions keep only the latest
  value per key.  Slow clients converge to the final state with a
  queue bounded by the number of distinct keys, *nothing* is dropped,
  and reconnects are served from the frontend's own state (delta
  catch-up or edge snapshot) — the source tier's cost stays one
  standing stream per frontend through the whole storm.
- ``watch-disconnect`` — same pipeline, but overflow closes the
  session.  Slow clients cycle: queued updates return to the durable
  cursor and reconnect re-serves them, trading delivery latency (and
  snapshot churn) for loss-freedom.
- ``pubsub-drop`` — frontends subscribe a free consumer per frontend;
  the every-message contract forbids coalescing, so a slow client's
  bounded queue must *shed* updates.  Every shed is traced as
  ``edge.drop`` so loss provenance attributes it ("dropped at edge") —
  visible loss, but loss all the same.
- ``pubsub-unbounded`` — the same pipeline refusing to shed: queue
  depth for slow clients grows without bound (the broker-side version
  of this pathology is E2's backlog growth).  Reconnect catch-up
  replays the *broker's partition logs* per client, so the storm
  multiplies read load on the source tier.

Every offered update must land in exactly one accounting bucket
(delivered / coalesced / dropped / returned-to-cursor / still queued):
the ``attributed_pct`` column is the conservation check and must read
100.0 for every configuration.
"""

from __future__ import annotations

from statistics import median

from repro._types import KeyRange
from repro.bench.runner import ExperimentResult
from repro.core.bridge import DirectIngestBridge
from repro.core.watch_system import WatchSystem
from repro.edge.client import EdgeClient
from repro.edge.frontend import (
    EdgeFrontendConfig,
    PubsubEdgeFrontend,
    WatchEdgeFrontend,
)
from repro.edge.placement import SessionPlacement
from repro.edge.session import SessionConfig, SlowConsumerPolicy
from repro.obs import TraceIndex, Tracer
from repro.obs.report import trace_summary_row
from repro.pubsub.broker import Broker
from repro.sim.kernel import Simulation
from repro.sim.network import Network, NetworkConfig
from repro.storage.kv import MVCCStore
from repro.workloads.generators import UniformKeys, WriteStream, key_universe

DEFAULTS = dict(
    configs=("watch-coalesce", "watch-disconnect",
             "pubsub-drop", "pubsub-unbounded"),
    num_frontends=3,
    num_clients=36,
    slow_fraction=0.25,
    num_keys=80,
    update_rate=30.0,
    duration=45.0,
    drain=120.0,
    storm_at=18.0,
    storm_fraction=0.6,
    storm_window=2.0,
    downtime_mean=4.0,
    loss_rate=0.02,
    base_latency=0.002,
    slow_service_time=0.1,
    fast_service_time=0.002,
    max_queue=96,
    catchup_threshold=100,
    seed=71,
)
QUICK = dict(
    configs=("watch-coalesce", "watch-disconnect",
             "pubsub-drop", "pubsub-unbounded"),
    num_frontends=2,
    num_clients=16,
    slow_fraction=0.25,
    num_keys=48,
    update_rate=25.0,
    duration=20.0,
    drain=50.0,
    storm_at=8.0,
    storm_fraction=0.6,
    storm_window=1.5,
    downtime_mean=2.5,
    loss_rate=0.02,
    base_latency=0.002,
    slow_service_time=0.1,
    fast_service_time=0.002,
    max_queue=96,
    catchup_threshold=100,
    seed=71,
)

_POLICIES = {
    "coalesce": SlowConsumerPolicy.COALESCE,
    "disconnect": SlowConsumerPolicy.DISCONNECT,
    "drop": SlowConsumerPolicy.DROP,
    "unbounded": SlowConsumerPolicy.DROP,  # with an unreachable bound
}


def _client_names(n: int):
    """Client names spread across the keyspace so the placement
    sharder distributes them over all frontends."""
    return [f"{chr(ord('a') + (26 * i) // n)}{i:03d}" for i in range(n)]


def _slow_indices(n: int, fraction: float):
    """Evenly interleaved slow clients (so every frontend gets some)."""
    num_slow = round(n * fraction)
    return {i for i in range(n) if (i * num_slow) % n < num_slow}


def run(
    configs=("watch-coalesce", "watch-disconnect",
             "pubsub-drop", "pubsub-unbounded"),
    num_frontends: int = 3,
    num_clients: int = 36,
    slow_fraction: float = 0.25,
    num_keys: int = 80,
    update_rate: float = 30.0,
    duration: float = 45.0,
    drain: float = 120.0,
    storm_at: float = 18.0,
    storm_fraction: float = 0.6,
    storm_window: float = 2.0,
    downtime_mean: float = 4.0,
    loss_rate: float = 0.02,
    base_latency: float = 0.002,
    slow_service_time: float = 0.1,
    fast_service_time: float = 0.002,
    max_queue: int = 96,
    catchup_threshold: int = 100,
    seed: int = 71,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E11 edge tier: reconnect storm and slow clients, "
                   "watch vs pubsub session policies",
        claim="watch sessions coalesce to bounded queues with zero loss "
              "and serve reconnects from edge state; pubsub sessions "
              "must either shed updates (attributed as 'dropped at "
              "edge') or grow unbounded queues, and reconnect catch-up "
              "replays the source-side log",
    )
    sessions_table = result.new_table(
        "edge sessions",
        ["config", "sessions", "storm_dc", "catchups", "snapshots",
         "replayed", "resyncs", "restale_p50", "restale_max",
         "peak_q_slow", "peak_q_fast"],
    )
    provenance_table = result.new_table(
        "delivery provenance",
        ["config", "offered", "delivered", "coalesced", "dropped_edge",
         "returned", "queued", "attributed_pct", "final_stale",
         "src_per_commit"],
    )
    trace_table = result.new_table(
        "trace summary",
        ["config", "traced_updates", "delivered", "e2e_p50_ms", "e2e_p99_ms",
         "wire_lost", "lost_attributed", "edge_dropped", "drop_provenance"],
    )
    tracers = {}
    result.artifacts["tracers"] = tracers
    keys = key_universe(num_keys)
    names = _client_names(num_clients)
    slow = _slow_indices(num_clients, slow_fraction)

    for config_name in configs:
        system, _, policy_name = config_name.partition("-")
        policy = _POLICIES[policy_name]
        bound = 1_000_000_000 if policy_name == "unbounded" else max_queue
        sim = Simulation(seed=seed)
        store = MVCCStore(clock=sim.now)
        tracer = Tracer(sim, name=config_name)
        tracers[config_name] = tracer
        tracer.observe_store(store)
        net = Network(sim, NetworkConfig(
            base_latency=base_latency, jitter=base_latency / 2,
            loss_rate=loss_rate,
        ), tracer=tracer)
        frontend_config = EdgeFrontendConfig(
            session=SessionConfig(
                # a 2-deep credit window caps a client's consumption
                # at 2/service_time items per second: that is what makes
                # the slow clients genuinely slow (20/s vs 30/s offered)
                policy=policy, max_queue=bound,
                initial_credits=2, delivery_latency=0.001,
            ),
            catchup_threshold=catchup_threshold,
        )

        if system == "watch":
            source = WatchSystem(sim, name="src-ws", tracer=tracer)
            DirectIngestBridge(
                sim, store.history, source, latency=0.002,
                progress_interval=0.25,
            )

            def store_snapshot(key_range):
                version = store.last_version
                return version, dict(store.scan(key_range, version))

            frontends = [
                WatchEdgeFrontend(
                    sim, f"fe{i}", source, store_snapshot, net=net,
                    config=frontend_config, tracer=tracer,
                )
                for i in range(num_frontends)
            ]
        elif system == "pubsub":
            broker = Broker(sim, tracer=tracer)
            broker.create_topic("updates", num_partitions=4)

            def publish_commit(commit):
                for key, mutation in commit.writes:
                    broker.publish("updates", key, {
                        "version": commit.version, "value": mutation.value,
                    })

            store.history.tail(publish_commit)
            frontends = [
                PubsubEdgeFrontend(
                    sim, f"fe{i}", broker, "updates", net=net,
                    config=frontend_config, tracer=tracer,
                )
                for i in range(num_frontends)
            ]
        else:
            raise ValueError(f"unknown config {config_name!r}")

        placement = SessionPlacement(sim, frontends)
        clients = []
        for i, name in enumerate(names):
            client = EdgeClient(
                sim, name, placement,
                service_time=(
                    slow_service_time if i in slow else fast_service_time
                ),
                reconnect_delay=0.3,
            )
            clients.append(client)
            sim.call_after(sim.rng.uniform(0.0, 0.5), client.connect)

        writer = WriteStream(
            sim, store, UniformKeys(sim, keys), rate=update_rate,
            value_fn=lambda n: {"v": n},
        )
        writer.start()
        sim.call_at(duration, writer.stop)

        # the storm: a fraction of clients drop within a short window
        # and stay away for an exponential holdoff before reconnecting
        storm = {"disconnects": 0}
        stormers = sim.rng.sample(
            clients, round(num_clients * storm_fraction)
        )
        for client in stormers:
            hit_at = storm_at + sim.rng.uniform(0.0, storm_window)
            downtime = min(
                sim.rng.expovariate(1.0 / downtime_mean), 4 * downtime_mean
            )

            def hit(client=client, downtime=downtime):
                if client.session is None:
                    return  # already between sessions (e.g. mid-cycle)
                storm["disconnects"] += 1
                client.auto_reconnect = False
                client.disconnect()

                def back():
                    client.auto_reconnect = True
                    client.connect()

                sim.call_after(downtime, back)

            sim.call_at(hit_at, hit)

        sim.run(until=duration + drain)

        # ------------------------------------------------------------------
        # accounting
        latest = dict(store.scan(KeyRange.all(), store.last_version))
        commits = int(store.last_version)
        totals = {key: 0 for key in
                  ("offered", "delivered", "coalesced", "dropped",
                   "returned", "queued")}
        final_stale = 0
        restale = []
        peak_slow = peak_fast = 0
        for i, client in enumerate(clients):
            client.stop()
            client_totals = client.finalize()
            for key in totals:
                totals[key] += client_totals[key]
            restale.extend(client.staleness_at_connect[1:])
            final_stale += sum(
                1 for key, value in latest.items()
                if client.state.get(key) != value
            )
            if i in slow:
                peak_slow = max(peak_slow, client.peak_queue)
            else:
                peak_fast = max(peak_fast, client.peak_queue)

        accounted = sum(v for k, v in totals.items() if k != "offered")
        attributed_pct = (
            100.0 * accounted / totals["offered"] if totals["offered"] else 100.0
        )
        if system == "watch":
            src_load = sum(fe.link.events_shipped for fe in frontends)
            src_load += sum(fe.source_snapshots for fe in frontends)
            replayed = 0
            resyncs = sum(fe.feed_resyncs for fe in frontends)
            snapshots = sum(fe.snapshots_served for fe in frontends)
        else:
            src_load = sum(fe._consumer.processed for fe in frontends)
            replayed = sum(fe.replayed for fe in frontends)
            src_load += replayed
            resyncs = 0
            snapshots = 0  # pubsub has no snapshot to re-serve

        sessions_table.add(
            config=config_name,
            sessions=sum(c.connects for c in clients),
            storm_dc=storm["disconnects"],
            catchups=sum(fe.catchups_served for fe in frontends),
            snapshots=snapshots,
            replayed=replayed,
            resyncs=resyncs,
            restale_p50=round(median(restale), 1) if restale else 0,
            restale_max=max(restale, default=0),
            peak_q_slow=peak_slow,
            peak_q_fast=peak_fast,
        )
        provenance_table.add(
            config=config_name,
            offered=totals["offered"],
            delivered=totals["delivered"],
            coalesced=totals["coalesced"],
            dropped_edge=totals["dropped"],
            returned=totals["returned"],
            queued=totals["queued"],
            attributed_pct=round(attributed_pct, 1),
            final_stale=final_stale,
            src_per_commit=round(src_load / commits, 2) if commits else 0.0,
        )
        index = TraceIndex(tracer.log)
        drop_provenance = sum(
            1 for record in index.loss_provenance()
            if record.cause == "dropped at edge"
        )
        trace_table.add(
            config=config_name,
            **trace_summary_row(index),
            edge_dropped=index.edge_summary()["dropped"],
            drop_provenance=drop_provenance,
        )

    result.notes.append(
        "attributed_pct is the conservation check: every offered update "
        "lands in exactly one of delivered/coalesced/dropped_edge/"
        "returned/queued, so it must read 100.0 in every row.  "
        "src_per_commit is source-tier work per committed write "
        "(relay stream events + store snapshots for watch; free-consumer "
        "deliveries + log replays for pubsub) — watch stays ~one stream "
        "per frontend through the storm, while pubsub reconnects replay "
        "the partition logs.  restale_* summarize how many versions "
        "(watch) or messages (pubsub) behind each *re*connect found the "
        "client; final_stale counts client-key pairs that never "
        "converged to the store's final value."
    )
    return result
