"""E9 — Figure 3: the storage × notification quadrant matrix.

The unbundled model composes along two axes: the storage can be
*producer storage* (system of record) or *ingestion storage*
(ephemeral events), and the watch can be *built into the store*
(Spanner change streams / etcd) or an *external system* over the
Ingester contract (Snappy over MySQL/TiDB).  The paper's claim is that
all four quadrants support the use cases — the model "generalizes".

One replication-style workload (watch a range, maintain a mirror,
survive a resync) runs in each quadrant.  Success criteria per
quadrant: complete mirror, knowledge window open (progress works), and
resync recovery works.
"""

from __future__ import annotations

from repro._types import KeyRange
from repro.bench.runner import ExperimentResult
from repro.core.bridge import DirectIngestBridge, PartitionedIngestBridge, even_ranges
from repro.core.linked_cache import LinkedCache, LinkedCacheConfig
from repro.core.store_watch import StoreWatch
from repro.core.watch_system import WatchSystem
from repro.sim.kernel import Simulation, Timeout
from repro.storage.kv import MVCCStore
from repro.storage.timeseries import IngestionStore

DEFAULTS = dict(
    num_keys=120,
    update_rate=60.0,
    duration=30.0,
    seed=97,
)
QUICK = dict(
    num_keys=60,
    update_rate=40.0,
    duration=15.0,
    seed=97,
)


def run(
    num_keys: int = 120,
    update_rate: float = 60.0,
    duration: float = 30.0,
    seed: int = 97,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E9 storage x notification quadrants (Figure 3)",
        claim="producer/ingestion storage each work with built-in or "
              "external watch; the same consumer code runs unchanged in "
              "all four quadrants",
    )
    table = result.new_table(
        "quadrants",
        ["storage", "watch", "events_seen", "mirror_complete",
         "progress_works", "resync_recovers"],
    )

    quadrants = [
        ("producer", "built-in"),
        ("producer", "external"),
        ("ingestion", "built-in"),
        ("ingestion", "external"),
    ]

    for storage_kind, watch_kind in quadrants:
        sim = Simulation(seed=seed)
        if storage_kind == "producer":
            store = MVCCStore(clock=sim.now)

            def write(n, store=store):
                store.put(f"{'abcdefghij'[n % 10]}{n % num_keys:05d}", {"v": n})

            def expected_items(store=store):
                return dict(store.scan())

            def snapshot_fn(kr, store=store):
                version = store.last_version
                return version, dict(store.scan(kr, version))
        else:
            store = IngestionStore(clock=sim.now)

            def write(n, store=store):
                store.append(f"{'abcdefghij'[n % 10]}{n % num_keys:05d}", {"v": n})

            def expected_items(store=store):
                return store.snapshot_latest()

            def snapshot_fn(kr, store=store):
                version = store.last_version
                return version, store.snapshot_latest(kr)

        if watch_kind == "built-in":
            watchable = StoreWatch(sim, store)
        else:
            watchable = WatchSystem(sim)
            if storage_kind == "producer":
                PartitionedIngestBridge(
                    sim, store.history, watchable, even_ranges(4),
                    progress_interval=0.5,
                )
            else:
                DirectIngestBridge(
                    sim, store.history, watchable, progress_interval=0.5
                )

        cache = LinkedCache(
            sim, watchable, snapshot_fn, KeyRange.all(),
            config=LinkedCacheConfig(snapshot_latency=0.05),
            name=f"{storage_kind}-{watch_kind}",
        )
        cache.start()

        def writer():
            n = 0
            deadline = sim.now() + duration
            while sim.now() < deadline:
                write(n)
                n += 1
                yield Timeout(1.0 / update_rate)

        sim.spawn(writer(), name="writer")
        # force one resync mid-run to prove recovery in every quadrant
        if watch_kind == "external":
            sim.call_at(duration * 0.5, watchable.wipe)
        else:
            def force_resync(cache=cache):
                # built-in watch has no soft state to wipe; simulate the
                # store closing the stream (e.g. history truncation)
                if cache._watch_handle is not None:
                    cache._watch_handle.cancel()
                    cache._watch_handle = None
                cache.on_resync()

            sim.call_at(duration * 0.5, force_resync)
        sim.run(until=duration + 10.0)

        expected = expected_items()
        got = cache.data.items_latest(KeyRange.all())
        mirror_complete = all(got.get(k) == v for k, v in expected.items())
        progress_works = cache.knowledge.max_known_version() > 0
        table.add(
            storage=storage_kind,
            watch=watch_kind,
            events_seen=cache.events_applied,
            mirror_complete=mirror_complete,
            progress_works=progress_works,
            resync_recovers=(cache.resync_count >= 1 and cache.state == "watching"),
        )

    result.notes.append(
        "the same LinkedCache consumer ran in all four quadrants; only "
        "the wiring (store kind x watch kind) differed — Figure 3's "
        "design space, covered."
    )
    return result
