"""A4 (ablation) — §4.2.1: serving resync snapshots from a replica.

"Note that it is acceptable to read a stale snapshot, so we can
optionally reduce load on the underlying storage by reading from a
replica instead."

A fleet of watchers suffers periodic restarts against a rolling
retention window, so each restarted watcher resumes below the floor
and must recover via snapshot.  We compare recovery snapshots served
by the primary store vs. by a read replica lagging by a configurable
amount:

- primary-served: zero extra staleness, but the primary absorbs every
  recovery scan;
- replica-served: the primary serves **zero** recovery scans; the
  stale snapshot costs extra catch-up events, and the final state is
  identical (the watch stream replays the gap).

The replica-lag sweep shows the cost curve: more lag = more catch-up,
never divergence.
"""

from __future__ import annotations

from repro._types import KeyRange
from repro.bench.runner import ExperimentResult
from repro.core.bridge import DirectIngestBridge
from repro.core.linked_cache import LinkedCache, LinkedCacheConfig
from repro.core.watch_system import WatchSystem, WatchSystemConfig
from repro.sim.kernel import Simulation
from repro.storage.kv import MVCCStore
from repro.storage.replica import ReadReplica, SnapshotCounter
from repro.workloads.generators import UniformKeys, WriteStream, key_universe

DEFAULTS = dict(
    sources=("primary", "replica-0.5s", "replica-5s"),
    num_watchers=10,
    update_rate=80.0,
    duration=40.0,
    wipe_every=8.0,
    seed=113,
)
QUICK = dict(
    sources=("primary", "replica-2s"),
    num_watchers=6,
    update_rate=50.0,
    duration=20.0,
    wipe_every=6.0,
    seed=113,
)


def run(
    sources=("primary", "replica-0.5s", "replica-5s"),
    num_watchers: int = 10,
    update_rate: float = 80.0,
    duration: float = 40.0,
    wipe_every: float = 8.0,
    seed: int = 113,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="A4 resync snapshots: primary vs replica (§4.2.1)",
        claim="replica-served recovery removes all snapshot load from "
              "the primary; staleness only adds catch-up events, never "
              "divergence",
    )
    table = result.new_table(
        "snapshot source sweep",
        ["source", "resyncs", "primary_snapshot_scans",
         "replica_snapshot_scans", "snapshot_staleness_versions",
         "all_complete"],
    )
    keys = key_universe(80)

    for source in sources:
        sim = Simulation(seed=seed)
        store = MVCCStore(clock=sim.now)
        ws = WatchSystem(sim, WatchSystemConfig(max_buffered_events=100_000))
        DirectIngestBridge(sim, store.history, ws, progress_interval=0.25)
        counter = SnapshotCounter(store)
        replica = None
        staleness_samples = []
        if source == "primary":
            base_snapshot_fn = counter.serve_snapshot
        else:
            lag = float(source.split("-")[1].rstrip("s"))
            replica = ReadReplica(sim, store, apply_lag=lag)
            base_snapshot_fn = replica.serve_snapshot

        def snapshot_fn(kr):
            version, items = base_snapshot_fn(kr)
            staleness_samples.append(store.last_version - version)
            return version, items

        caches = []
        for i in range(num_watchers):
            cache = LinkedCache(
                sim, ws, snapshot_fn, KeyRange.all(),
                LinkedCacheConfig(snapshot_latency=0.05), name=f"w{i}",
            )
            caches.append(cache)
            cache.start()
        writer = WriteStream(
            sim, store, UniformKeys(sim, keys), rate=update_rate
        )
        sim.call_after(0.2, writer.start)

        # retention: the watch system keeps a rolling window of recent
        # history (floor advances); a watcher that resumes from a
        # position below the floor must resync via snapshot (§4.2.1).
        # The margin is sized so a moderately stale replica snapshot is
        # itself re-watchable — the assumption behind the replica option.
        margin_versions = int(update_rate * 8)

        def retention_tick():
            if sim.now() < duration:
                ws.raise_floor(max(0, store.last_version - margin_versions))
                sim.call_after(1.0, retention_tick)

        sim.call_after(1.0, retention_tick)

        # watcher restarts: every wipe_every seconds one watcher goes
        # down for longer than the retained window covers, then resumes
        # from its old position — forcing the snapshot recovery path
        downtime = margin_versions / update_rate + 4.0
        restart_state = {"idx": 0}

        def restart_tick():
            if sim.now() >= duration:
                return
            cache = caches[restart_state["idx"] % len(caches)]
            restart_state["idx"] += 1
            cache.suspend()
            sim.call_after(downtime, cache.resume)
            sim.call_after(wipe_every, restart_tick)

        sim.call_after(wipe_every, restart_tick)
        sim.call_at(duration, writer.stop)
        sim.run(until=duration + 15.0)

        truth = dict(store.scan())
        complete = all(c.data.items_latest() == truth for c in caches)
        resyncs = sum(c.resync_count for c in caches)
        avg_staleness = (
            sum(staleness_samples) / len(staleness_samples)
            if staleness_samples else 0.0
        )
        table.add(
            source=source,
            resyncs=resyncs,
            primary_snapshot_scans=counter.snapshots_served,
            replica_snapshot_scans=(
                replica.snapshots_served if replica is not None else 0
            ),
            snapshot_staleness_versions=round(avg_staleness, 1),
            all_complete=complete,
        )

    result.notes.append(
        "snapshot_staleness_versions: how far behind the store head the "
        "served snapshots were — exactly the extra events the watch "
        "stream replays afterwards.  The price of offloading the "
        "primary is stream traffic, never correctness."
    )
    return result
