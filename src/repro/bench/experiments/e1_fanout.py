"""E1 — Figure 1 baseline: pubsub event fanout when consumers keep up.

§2 grants pubsub its home turf: many producers, many consumer groups
and free consumers, everything keeping up.  This experiment verifies
our baseline behaves like the system the paper describes (complete
delivery, bounded latency, backlog ≈ 0 at quiescence) across a fanout
sweep, and runs the identical workload through the watch model
(ingestion store + watch system) to show it covers the same ground —
the paper's "general enough to handle all pubsub use cases".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro._types import KEY_MAX, KEY_MIN
from repro.bench.runner import ExperimentResult
from repro.core.api import FnWatchCallback
from repro.core.store_watch import StoreWatch
from repro.core.stream import WatcherConfig
from repro.pubsub.broker import Broker
from repro.pubsub.consumer import Consumer
from repro.pubsub.subscription import RoutingPolicy, SubscriptionConfig
from repro.sim.kernel import Simulation, Timeout
from repro.sim.metrics import Histogram
from repro.storage.timeseries import IngestionStore
from repro.workloads.generators import key_universe

DEFAULTS = dict(
    fanouts=(1, 4, 16),
    num_producers=8,
    publish_rate=400.0,
    duration=30.0,
    drain=10.0,
    seed=11,
)
QUICK = dict(
    fanouts=(1, 4),
    num_producers=4,
    publish_rate=200.0,
    duration=8.0,
    drain=5.0,
    seed=11,
)


def _producers(sim: Simulation, publish, num_producers: int, rate: float, duration: float, keys) -> None:
    per_producer = rate / num_producers
    for p in range(num_producers):
        def gen(p=p):
            deadline = sim.now() + duration
            n = 0
            while sim.now() < deadline:
                key = keys[sim.rng.randrange(len(keys))]
                publish(key, {"n": n, "producer": p, "t": sim.now()})
                n += 1
                yield Timeout(1.0 / per_producer)

        sim.spawn(gen(), name=f"producer-{p}")


def run(
    fanouts=(1, 4, 16),
    num_producers: int = 8,
    publish_rate: float = 400.0,
    duration: float = 30.0,
    drain: float = 10.0,
    seed: int = 11,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E1 fanout baseline (Figure 1)",
        claim="pubsub delivers completely with bounded latency when "
              "consumers keep up; the watch model covers the same workload",
    )
    table = result.new_table(
        "fanout sweep",
        ["system", "fanout", "published", "delivered", "complete",
         "latency_p50", "latency_p99", "final_backlog"],
    )
    keys = key_universe(64)

    for fanout in fanouts:
        # ---------------- pubsub ----------------
        sim = Simulation(seed=seed)
        broker = Broker(sim)
        broker.create_topic("events", num_partitions=8)
        latency = Histogram("latency")
        groups = []
        for g in range(fanout):
            group = broker.consumer_group(
                "events", f"group-{g}",
                SubscriptionConfig(routing=RoutingPolicy.PARTITION),
            )
            groups.append(group)
            for c in range(2):
                def handler(message, latency=latency):
                    latency.observe(sim.now() - message.payload["t"])
                    return True

                group.join(Consumer(sim, f"g{g}c{c}", handler=handler, service_time=0.0005))
        _producers(
            sim,
            lambda key, payload: broker.publish("events", key, payload),
            num_producers, publish_rate, duration, keys,
        )
        sim.run(until=duration + drain)
        published = broker.topic("events").total_messages_published
        delivered = sum(g.total_processed for g in groups)
        backlog = sum(g.backlog() for g in groups)
        table.add(
            system="pubsub", fanout=fanout, published=published,
            delivered=delivered, complete=(delivered == published * fanout),
            latency_p50=latency.p50, latency_p99=latency.p99,
            final_backlog=backlog,
        )

        # ---------------- watch (ingestion store + built-in watch) -----
        sim = Simulation(seed=seed)
        store = IngestionStore(clock=sim.now)
        watch = StoreWatch(sim, store, WatcherConfig(service_time=0.0005))
        latency_w = Histogram("latency")
        counts = [0] * fanout
        for w in range(fanout):
            def on_event(event, w=w, latency_w=latency_w):
                counts[w] += 1
                latency_w.observe(sim.now() - event.mutation.value["t"])

            watch.watch(KEY_MIN, KEY_MAX, 0, FnWatchCallback(on_event=on_event))
        _producers(
            sim,
            lambda key, payload: store.append(key, payload),
            num_producers, publish_rate, duration, keys,
        )
        sim.run(until=duration + drain)
        ingested = len(store)
        delivered_w = sum(counts)
        table.add(
            system="watch", fanout=fanout, published=ingested,
            delivered=delivered_w, complete=(delivered_w == ingested * fanout),
            latency_p50=latency_w.p50, latency_p99=latency_w.p99,
            final_backlog=0,
        )

    result.notes.append(
        "complete=yes everywhere: both models handle the §2 happy path; "
        "differences appear once consumers lag (E2) or shard (E3/E6)."
    )
    return result
