"""E8 — §4.4 efficiency: hard state vs soft state.

"The watch design avoids the need for an additional hard state message
log and relies instead on the existing hard state provider store."

The same CDC workload runs through both pipelines and we account bytes:

- the producer store's durable writes (paid by both models — it is the
  source of truth);
- pubsub: the broker's partition logs are a *second* durable copy of
  every change (plus DLQ/replay state when used) — write amplification;
- watch: the watch system holds a bounded in-memory buffer.  To prove
  it is soft state (not just "state we decided not to count"), the
  experiment **destroys it mid-run** (`wipe()`); consumers resync from
  the store and the run ends with complete, correct consumer state and
  zero extra durable bytes.

The second table sweeps consumer fanout: pubsub's durable bytes are
per-topic (shared), but its delivery work and the watch system's are
both per-consumer; the hard-state gap is what §4.4 highlights.
"""

from __future__ import annotations

from repro._types import KeyRange
from repro.bench.runner import ExperimentResult
from repro.core.bridge import DirectIngestBridge
from repro.core.linked_cache import LinkedCache, LinkedCacheConfig
from repro.core.watch_system import WatchSystem, WatchSystemConfig
from repro.pubsub.broker import Broker
from repro.pubsub.consumer import Consumer
from repro.pubsub.log import RetentionPolicy
from repro.pubsub.subscription import SubscriptionConfig
from repro.sim.kernel import Simulation
from repro.storage.kv import MVCCStore
from repro.workloads.generators import UniformKeys, WriteStream, key_universe

DEFAULTS = dict(
    num_keys=300,
    update_rate=100.0,
    duration=60.0,
    drain=20.0,
    wipe_at=0.5,
    seed=89,
)
QUICK = dict(
    num_keys=150,
    update_rate=50.0,
    duration=25.0,
    drain=10.0,
    wipe_at=0.5,
    seed=89,
)


def run(
    num_keys: int = 300,
    update_rate: float = 100.0,
    duration: float = 60.0,
    drain: float = 20.0,
    wipe_at: float = 0.5,
    seed: int = 89,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E8 hard-state write amplification vs soft state (§4.4)",
        claim="pubsub persists a second durable copy of every change; "
              "the watch system's state is soft — destroy it mid-run "
              "and consumers recover completely from the store",
    )
    table = result.new_table(
        "pipelines",
        ["system", "store_bytes", "extra_durable_bytes", "amplification",
         "soft_state_peak_bytes", "wiped_mid_run", "consumer_complete"],
    )
    keys = key_universe(num_keys)

    # ------------------------------ pubsub -----------------------------
    sim = Simulation(seed=seed)
    store = MVCCStore(clock=sim.now)
    broker = Broker(sim)
    broker.create_topic("cdc", num_partitions=4,
                        retention=RetentionPolicy(max_age=3600.0))
    from repro.cdc.publisher import CdcPublisher

    CdcPublisher(sim, store.history, broker, "cdc")
    group = broker.consumer_group("cdc", "mirror", SubscriptionConfig())
    mirror = {}

    def handler(message):
        if message.payload["op"] == "delete":
            mirror.pop(message.key, None)
        else:
            mirror[message.key] = message.payload["value"]
        return True

    group.join(Consumer(sim, "mirror-0", handler=handler, service_time=0.001))
    writer = WriteStream(sim, store, UniformKeys(sim, keys), rate=update_rate)
    writer.start()
    sim.call_at(duration, writer.stop)
    sim.run(until=duration + drain)
    expected = dict(store.scan())
    complete = all(mirror.get(k) == v for k, v in expected.items())
    table.add(
        system="pubsub",
        store_bytes=store.bytes_written,
        extra_durable_bytes=broker.hard_state_bytes,
        amplification=round(
            (store.bytes_written + broker.hard_state_bytes)
            / store.bytes_written, 2,
        ),
        soft_state_peak_bytes=0,
        wiped_mid_run=False,
        consumer_complete=complete,
    )

    # ------------------------------ watch ------------------------------
    sim = Simulation(seed=seed)
    store = MVCCStore(clock=sim.now)
    ws = WatchSystem(sim, WatchSystemConfig(max_buffered_events=20_000))
    DirectIngestBridge(sim, store.history, ws, progress_interval=1.0)

    def snapshot_fn(kr):
        version = store.last_version
        return version, dict(store.scan(kr, version))

    cache = LinkedCache(
        sim, ws, snapshot_fn, KeyRange.all(),
        config=LinkedCacheConfig(snapshot_latency=0.5),
        name="mirror",
    )
    cache.start()
    writer = WriteStream(sim, store, UniformKeys(sim, keys), rate=update_rate)
    writer.start()
    peak_soft = {"bytes": 0}

    def sample():
        peak_soft["bytes"] = max(peak_soft["bytes"], ws.soft_state_bytes())
        sim.call_after(1.0, sample)

    sample()
    sim.call_at(duration * wipe_at, ws.wipe)  # destroy all soft state
    sim.call_at(duration, writer.stop)
    sim.run(until=duration + drain)
    expected = dict(store.scan())
    got = cache.data.items_latest(KeyRange.all())
    complete = all(got.get(k) == v for k, v in expected.items())
    table.add(
        system="watch",
        store_bytes=store.bytes_written,
        extra_durable_bytes=0,
        amplification=1.0,
        soft_state_peak_bytes=peak_soft["bytes"],
        wiped_mid_run=True,
        consumer_complete=complete,
    )

    result.notes.append(
        "amplification = durable bytes written per source byte.  The "
        "watch pipeline's soft state was destroyed mid-run (wipe); the "
        "consumer resynced from the store and still ended complete — "
        "'this is soft state that can be recovered if deleted' (§4.2.2)."
    )
    return result
