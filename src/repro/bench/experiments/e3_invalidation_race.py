"""E3 — §3.2.2 / Figure 2: cache invalidation under auto-sharding.

A producer store updates objects; a dynamically sharded cache fleet
must stay fresh.  Configurations (rows):

- ``pubsub-naive``    — consumer group, key-hash routing, always ack.
  Routing is pubsub's, ownership is the sharder's; they disagree, so
  owners keep stale entries indefinitely.
- ``pubsub-owner``    — members ack only keys they believe they own
  (random rerouting on nack).  Fails exactly in the Figure 2 window:
  the old owner still believes, acks, and the new owner — which filled
  its cache just before the update — is never told.
- ``pubsub-lease``    — §3.2.2's mitigation: only the lease holder
  acks.  Staleness ~0, but handoffs leave ownerless windows
  (unavailability).
- ``pubsub-free``     — every node consumes the whole feed.  Correct,
  but per-node invalidation load equals the full update rate.
- ``pubsub-ttl``      — naive + TTL fallback: staleness bounded by the
  TTL instead of forever, at the cost of refill load and windows of
  staleness.
- ``watch``           — each node snapshots+watches its assigned
  ranges; handoffs resync.  Fresh, available (minus brief sync
  windows), per-node load proportional to its share.

Handoffs are driven by scripted ``move_key`` calls at a swept rate,
with continuous writes racing them.  After traffic quiesces we audit
permanently stale entries; during the run a prober measures staleness
and availability, and we record per-node invalidation message load.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bench.runner import ExperimentResult
from repro.cache.cluster import CacheCluster, Prober
from repro.cache.invalidation import (
    FreeInvalidationPipeline,
    InvalidationMode,
    PubsubCacheNode,
    PubsubInvalidationPipeline,
)
from repro.cache.node import CacheNodeConfig
from repro.cache.watch_cache import WatchCacheNode
from repro.core.bridge import PartitionedIngestBridge, even_ranges
from repro.core.linked_cache import LinkedCacheConfig
from repro.core.watch_system import WatchSystem
from repro.obs import TraceIndex, Tracer
from repro.obs.report import trace_summary_row
from repro.pubsub.broker import Broker
from repro.sharding.autosharder import AutoSharder, AutoSharderConfig
from repro.sharding.leases import LeaseManager
from repro.sim.kernel import Simulation, Timeout
from repro.storage.kv import MVCCStore
from repro.workloads.generators import UniformKeys, WriteStream, key_universe

DEFAULTS = dict(
    configs=("pubsub-naive", "pubsub-owner", "pubsub-lease",
             "pubsub-free", "pubsub-ttl", "watch"),
    num_nodes=3,
    num_keys=150,
    update_rate=20.0,
    handoff_interval=0.4,
    duration=120.0,
    drain=30.0,
    probe_rate=50.0,
    seed=47,
)
QUICK = dict(
    configs=("pubsub-naive", "pubsub-owner", "watch"),
    num_nodes=3,
    num_keys=100,
    update_rate=20.0,
    handoff_interval=0.4,
    duration=45.0,
    drain=15.0,
    probe_rate=50.0,
    seed=47,
)


def _build_pubsub(sim, store, sharder, num_nodes, mode, ttl=None, tracer=None):
    broker = Broker(sim, tracer=tracer)
    leases = None
    if mode is InvalidationMode.LEASE:
        leases = LeaseManager(sim, lease_duration=1.0)
    nodes = [
        PubsubCacheNode(
            sim, f"node-{i}", store, mode, leases=leases,
            config=CacheNodeConfig(fetch_latency=0.01, ttl=ttl),
            tracer=tracer,
        )
        for i in range(num_nodes)
    ]
    pipeline = PubsubInvalidationPipeline(
        sim, store, broker, sharder, nodes, tracer=tracer
    )
    return nodes, pipeline, leases


def _build_free(sim, store, sharder, num_nodes, tracer=None):
    broker = Broker(sim, tracer=tracer)
    nodes = [
        PubsubCacheNode(
            sim, f"node-{i}", store, InvalidationMode.NAIVE,
            config=CacheNodeConfig(fetch_latency=0.01),
            tracer=tracer,
        )
        for i in range(num_nodes)
    ]
    pipeline = FreeInvalidationPipeline(
        sim, store, broker, sharder, nodes, tracer=tracer
    )
    return nodes, pipeline


def _build_watch(sim, store, sharder, num_nodes, tracer=None):
    ws = WatchSystem(sim, tracer=tracer)
    PartitionedIngestBridge(
        sim, store.history, ws, even_ranges(8), progress_interval=0.2
    )
    nodes = [
        WatchCacheNode(
            sim, f"node-{i}", store, ws,
            cache_config=LinkedCacheConfig(snapshot_latency=0.02),
            tracer=tracer,
        )
        for i in range(num_nodes)
    ]
    for node in nodes:
        sharder.subscribe(node.on_assignment)
    return nodes, ws


def run(
    configs=("pubsub-naive", "pubsub-owner", "pubsub-lease",
             "pubsub-free", "pubsub-ttl", "watch"),
    num_nodes: int = 4,
    num_keys: int = 400,
    update_rate: float = 40.0,
    handoff_interval: float = 2.0,
    duration: float = 120.0,
    drain: float = 30.0,
    probe_rate: float = 100.0,
    seed: int = 47,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E3 invalidation race under auto-sharding "
                   "(§3.2.2, Figure 2)",
        claim="pubsub consumer groups miss invalidations during dynamic "
              "handoffs (permanent staleness); leases trade staleness "
              "for unavailability; free consumers trade it for per-node "
              "load; watch is fresh, available, and load-proportional",
    )
    table = result.new_table(
        "configurations",
        ["config", "handoffs", "perm_stale", "stale_reads_frac",
         "unavail_frac", "per_node_msgs", "resyncs"],
    )
    trace_table = result.new_table(
        "trace summary",
        ["config", "traced_updates", "delivered", "e2e_p50_ms", "e2e_p99_ms",
         "wire_lost", "lost_attributed"],
    )
    tracers = {}
    result.artifacts["tracers"] = tracers
    keys = key_universe(num_keys)

    for config_name in configs:
        sim = Simulation(seed=seed)
        store = MVCCStore(clock=sim.now)
        # prefill so caches have something to serve
        for i, key in enumerate(keys):
            store.put(key, {"v": -1, "i": i})
        # trace only post-prefill commits: attach after the seed writes
        tracer = Tracer(sim, name=config_name)
        tracers[config_name] = tracer
        tracer.observe_store(store)
        sharder = AutoSharder(
            sim, [f"node-{i}" for i in range(num_nodes)],
            # assignment propagation takes up to ~300ms — the realistic
            # window in which nodes' ownership beliefs diverge
            AutoSharderConfig(
                notify_latency=0.05, notify_jitter=0.25, max_slices=4096
            ),
            auto_rebalance=False,
        )
        # fine-grained slices (~5 keys each), as a load-driven sharder
        # would have split a hot keyspace; a handoff then moves a few
        # keys, not a third of the fleet's entries
        for boundary_idx in range(0, num_keys, 5):
            sharder.split_at(keys[boundary_idx])
        leases = None
        ws = None
        if config_name == "pubsub-naive":
            nodes, pipeline, _ = _build_pubsub(
                sim, store, sharder, num_nodes, InvalidationMode.NAIVE,
                tracer=tracer,
            )
        elif config_name == "pubsub-owner":
            nodes, pipeline, _ = _build_pubsub(
                sim, store, sharder, num_nodes, InvalidationMode.OWNER_ACK,
                tracer=tracer,
            )
        elif config_name == "pubsub-lease":
            nodes, pipeline, leases = _build_pubsub(
                sim, store, sharder, num_nodes, InvalidationMode.LEASE,
                tracer=tracer,
            )
        elif config_name == "pubsub-free":
            nodes, pipeline = _build_free(
                sim, store, sharder, num_nodes, tracer=tracer
            )
        elif config_name == "pubsub-ttl":
            nodes, pipeline, _ = _build_pubsub(
                sim, store, sharder, num_nodes, InvalidationMode.NAIVE,
                ttl=duration / 4.0, tracer=tracer,
            )
        elif config_name == "watch":
            nodes, ws = _build_watch(
                sim, store, sharder, num_nodes, tracer=tracer
            )
        else:
            raise ValueError(f"unknown config {config_name!r}")

        cluster = CacheCluster(sim, sharder, nodes, store)
        writer = WriteStream(
            sim, store, UniformKeys(sim, keys), rate=update_rate,
            value_fn=lambda n: {"v": n},
        )
        writer.start()
        prober = Prober(sim, cluster, keys, rate=probe_rate)
        prober.start()

        # scripted handoffs: the sharder moves a *hot* key's slice (hot
        # keys are what load-driven sharders move), and — because it is
        # hot — that key keeps being read and updated right through the
        # handoff window.  This is exactly Figure 2's interleaving.
        handoffs = {"count": 0}
        move_order = list(keys)
        sim.rng.shuffle(move_order)

        def handoff_driver():
            # each key's slice moves at most once, so a missed
            # invalidation in its handoff window has no later handoff
            # to accidentally repair it — the Figure 2 end state
            for key in move_order:
                if sim.now() >= duration:
                    break
                target = f"node-{sim.rng.randrange(num_nodes)}"
                sharder.move_key(key, target)
                handoffs["count"] += 1
                for dt in (0.01, 0.03, 0.06, 0.09, 0.12, 0.15, 0.25, 0.4):
                    sim.call_after(dt, lambda key=key: cluster.read(key))
                for dt in (0.04, 0.1, 0.17):
                    sim.call_after(
                        dt,
                        lambda key=key: store.put(
                            key, {"v": sim.now(), "hot": True}
                        ),
                    )
                yield Timeout(handoff_interval)

        sim.spawn(handoff_driver(), name="handoffs")
        # the background writer stops halfway so that, for keys handed
        # off late, the handoff-window updates are their *final* writes
        # — a missed invalidation then has nothing left to repair it
        sim.call_at(duration * 0.5, writer.stop)
        # the prober keeps reading through the drain: missed
        # invalidations are *served*, not just latent
        sim.call_at(duration + drain * 0.8, prober.stop)
        sim.run(until=duration + drain)

        perm_stale = cluster.total_stale(keys)
        per_node_msgs = [
            getattr(node, "invalidation_messages_seen", None) for node in nodes
        ]
        if per_node_msgs[0] is None:  # watch nodes: events applied
            per_node_msgs = [node.events_applied for node in nodes]
        resyncs = sum(getattr(node, "resync_count", 0) for node in nodes)
        table.add(
            config=config_name,
            handoffs=handoffs["count"],
            perm_stale=perm_stale,
            stale_reads_frac=round(prober.stats.stale_fraction, 4),
            unavail_frac=round(prober.stats.unavailable_fraction, 4),
            per_node_msgs=max(per_node_msgs) if per_node_msgs else 0,
            resyncs=resyncs,
        )
        trace_table.add(config=config_name, **trace_summary_row(TraceIndex(tracer.log)))

    result.notes.append(
        "perm_stale counts cached entries still serving outdated values "
        "after all traffic quiesced — the application has no way to "
        "detect them (§3.2.2).  pubsub-free per_node_msgs equals the "
        "whole feed; watch per_node_msgs is the node's range share."
    )
    return result
