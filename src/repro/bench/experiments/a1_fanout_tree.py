"""A1 (ablation) — §4.4: "degree of fan out" scale points.

The paper says applications can pick watch systems "optimized for
different scale points, e.g. degree of fan out".  This ablation
compares serving N consumers directly from one watch system against a
two-level relay tree (R relays, N/R consumers each), measuring the
load the *source layer* carries: sessions attached to it and events it
delivers.  The tree divides source-layer work by N/R at the cost of
one extra hop of latency — the standard fan-out tree tradeoff, now
with end-to-end correctness preserved across relay resyncs (relays
re-serve snapshots from their own versioned state).
"""

from __future__ import annotations

from typing import List

from repro._types import KeyRange
from repro.bench.runner import ExperimentResult
from repro.core.bridge import DirectIngestBridge
from repro.core.linked_cache import LinkedCache, LinkedCacheConfig
from repro.core.relay import WatchRelay
from repro.core.watch_system import WatchSystem
from repro.sim.kernel import Simulation
from repro.sim.metrics import Histogram
from repro.storage.kv import MVCCStore
from repro.workloads.generators import UniformKeys, WriteStream, key_universe

DEFAULTS = dict(
    num_consumers=48,
    num_relays=4,
    update_rate=50.0,
    duration=30.0,
    seed=103,
)
QUICK = dict(
    num_consumers=24,
    num_relays=3,
    update_rate=30.0,
    duration=15.0,
    seed=103,
)


def run(
    num_consumers: int = 48,
    num_relays: int = 4,
    update_rate: float = 50.0,
    duration: float = 30.0,
    seed: int = 103,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="A1 fan-out: direct vs relay tree (§4.4 ablation)",
        claim="a relay tree divides source-layer sessions and delivery "
              "work by the tree branching factor, at one extra hop of "
              "latency, with correctness preserved",
    )
    table = result.new_table(
        "topologies",
        ["topology", "consumers", "source_sessions", "source_deliveries",
         "latency_p50", "latency_p99", "all_complete"],
    )
    keys = key_universe(60)

    for topology in ("direct", "tree"):
        sim = Simulation(seed=seed)
        store = MVCCStore(clock=sim.now)
        root = WatchSystem(sim, name="root")
        DirectIngestBridge(sim, store.history, root, progress_interval=0.2)

        def store_snapshot(kr):
            version = store.last_version
            return version, dict(store.scan(kr, version))

        latency = Histogram("latency")
        consumers: List[LinkedCache] = []

        class TimedCache(LinkedCache):
            def on_event(self, event):
                super().on_event(event)
                latency.observe(sim.now() - event.mutation.value["t"])

        if topology == "direct":
            for i in range(num_consumers):
                cache = TimedCache(
                    sim, root, store_snapshot, KeyRange.all(),
                    LinkedCacheConfig(snapshot_latency=0.02),
                    name=f"leaf-{i}",
                )
                consumers.append(cache)
                cache.start()
        else:
            relays = []
            for r in range(num_relays):
                relay = WatchRelay(
                    sim, root, store_snapshot, KeyRange.all(),
                    config=LinkedCacheConfig(snapshot_latency=0.02),
                    name=f"relay-{r}",
                )
                relays.append(relay)
                relay.start()
            for i in range(num_consumers):
                relay = relays[i % num_relays]
                cache = TimedCache(
                    sim, relay, relay.snapshot_for_downstream, KeyRange.all(),
                    LinkedCacheConfig(snapshot_latency=0.02),
                    name=f"leaf-{i}",
                )
                consumers.append(cache)
                cache.start()

        writer = WriteStream(
            sim, store, UniformKeys(sim, keys), rate=update_rate,
            value_fn=lambda n: {"n": n, "t": sim.now()},
        )
        sim.call_after(0.5, writer.start)
        sim.call_at(duration, writer.stop)
        sim.run(until=duration + 10.0)

        truth = dict(store.scan())
        complete = all(
            cache.data.items_latest() == truth for cache in consumers
        )
        # source deliveries = events ingested x sessions attached at root
        table.add(
            topology=topology,
            consumers=num_consumers,
            source_sessions=root.active_watchers,
            source_deliveries=root.events_ingested * max(root.active_watchers, 1),
            latency_p50=latency.p50,
            latency_p99=latency.p99,
            all_complete=complete,
        )

    result.notes.append(
        "source_deliveries approximates the source watch layer's output "
        "work (events x attached sessions).  The tree pays ~2x delivery "
        "latency (one extra hop) to divide source fan-out by "
        f"{num_consumers}/{num_relays}."
    )
    return result
