"""Experiment harness: one module per paper claim/figure.

``repro.bench.runner`` provides result containers and table/series
printing; ``repro.bench.experiments`` contains E1–E9 (see DESIGN.md §4
for the claim map).  Each experiment module exposes ``run(...)``
returning an :class:`~repro.bench.runner.ExperimentResult`, plus a
``DEFAULTS`` dict sized for interactive runs and a ``QUICK`` dict sized
for CI/pytest-benchmark.
"""

from repro.bench.runner import ExperimentResult, Table, print_result

__all__ = ["ExperimentResult", "Table", "print_result"]
