"""Knowledge regions (Figure 5).

"Each blue rectangle represents a knowledge region — a key range and
version window that define the versioned state the watcher knows for
that range."  A watcher that took a snapshot at v0 starts with one
region covering its watch range with window [v0, v0]; each range-scoped
progress event extends the window of the intersected span; pruning old
versions raises the window's low bound.

:class:`KnowledgeMap` maintains a set of non-overlapping regions over a
watcher's range and answers the queries the snapshot stitcher needs:

- is ``(range, version)`` fully known? (serve a snapshot read)
- what versions could serve a snapshot of ``range``? (pick a stitch
  version, possibly across multiple watchers)

Immutability (the property §4.3 calls out — "once a value is written at
a given version, it does not change") is a property of the *data*
(MVCC versions), which is what makes it sound to combine regions across
watchers: any two regions that both know (key, v) know the same value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro._types import Key, KeyRange, Version


@dataclass(frozen=True)
class KnowledgeRegion:
    """A key range whose state is known at every version in
    ``[low_version, high_version]`` (inclusive window)."""

    key_range: KeyRange
    low_version: Version
    high_version: Version

    def __post_init__(self) -> None:
        if self.low_version > self.high_version:
            raise ValueError(
                f"empty version window [{self.low_version}, {self.high_version}]"
            )

    def knows(self, key_range: KeyRange, version: Version) -> bool:
        return (
            self.key_range.contains_range(key_range)
            and self.low_version <= version <= self.high_version
        )

    def contains_version(self, version: Version) -> bool:
        return self.low_version <= version <= self.high_version

    def __str__(self) -> str:
        return f"{self.key_range}@[v{self.low_version}, v{self.high_version}]"


class KnowledgeMap:
    """Non-overlapping knowledge regions maintained by one watcher."""

    def __init__(self) -> None:
        self._regions: List[KnowledgeRegion] = []

    # ------------------------------------------------------------------
    # construction / mutation

    def reset(self, key_range: KeyRange, version: Version) -> None:
        """Start over from a snapshot: one region, window [version, version].

        Regions outside ``key_range`` are discarded (the watcher only
        re-snapshotted its own range).
        """
        self._regions = [KnowledgeRegion(key_range, version, version)]

    def clear(self) -> None:
        self._regions = []

    def extend(self, key_range: KeyRange, version: Version) -> None:
        """Apply a progress event: the intersection of existing regions
        with ``key_range`` now extends to ``version``.

        Only *existing* regions are extended — progress for a range the
        watcher has no base snapshot for conveys no usable knowledge
        (there is no floor state to apply events onto).
        """
        new_regions: List[KnowledgeRegion] = []
        for region in self._regions:
            overlap = region.key_range.intersect(key_range)
            if overlap is None or version <= region.high_version:
                new_regions.append(region)
                continue
            for outside in region.key_range.subtract(key_range):
                new_regions.append(
                    KnowledgeRegion(outside, region.low_version, region.high_version)
                )
            new_regions.append(
                KnowledgeRegion(overlap, region.low_version, version)
            )
        self._regions = self._normalize(new_regions)

    def prune_below(self, version: Version) -> None:
        """Raise every region's low bound to ``version`` (local MVCC GC).

        Regions whose whole window falls below are dropped.
        """
        kept: List[KnowledgeRegion] = []
        for region in self._regions:
            if region.high_version < version:
                continue
            kept.append(
                KnowledgeRegion(
                    region.key_range,
                    max(region.low_version, version),
                    region.high_version,
                )
            )
        self._regions = self._normalize(kept)

    @staticmethod
    def _normalize(regions: Iterable[KnowledgeRegion]) -> List[KnowledgeRegion]:
        """Sort by range and merge adjacent regions with equal windows."""
        ordered = sorted(regions, key=lambda r: (r.key_range.low, r.key_range.high))
        merged: List[KnowledgeRegion] = []
        for region in ordered:
            if merged:
                prev = merged[-1]
                if (
                    prev.key_range.high == region.key_range.low
                    and prev.low_version == region.low_version
                    and prev.high_version == region.high_version
                ):
                    merged[-1] = KnowledgeRegion(
                        KeyRange(prev.key_range.low, region.key_range.high),
                        prev.low_version,
                        prev.high_version,
                    )
                    continue
            merged.append(region)
        return merged

    # ------------------------------------------------------------------
    # queries

    @property
    def regions(self) -> Tuple[KnowledgeRegion, ...]:
        return tuple(self._regions)

    def knows(self, key_range: KeyRange, version: Version) -> bool:
        """Can a snapshot of ``key_range`` at ``version`` be served?

        True iff regions containing ``version`` in their window jointly
        cover all of ``key_range``.
        """
        remaining = [key_range]
        for region in self._regions:
            if not region.contains_version(version):
                continue
            next_remaining: List[KeyRange] = []
            for piece in remaining:
                next_remaining.extend(piece.subtract(region.key_range))
            remaining = next_remaining
            if not remaining:
                return True
        return not remaining

    def knows_key(self, key: Key, version: Version) -> bool:
        return self.knows(KeyRange.single(key), version)

    def candidate_versions(self, key_range: KeyRange) -> List[Version]:
        """Window boundaries of regions overlapping ``key_range`` —
        the only versions where coverage can change, so the stitcher
        need only test these."""
        versions: set[Version] = set()
        for region in self._regions:
            if region.key_range.overlaps(key_range):
                versions.add(region.low_version)
                versions.add(region.high_version)
        return sorted(versions)

    def best_snapshot_version(self, key_range: KeyRange) -> Optional[Version]:
        """Newest version at which all of ``key_range`` is known."""
        for version in reversed(self.candidate_versions(key_range)):
            if self.knows(key_range, version):
                return version
        return None

    def max_known_version(self) -> Version:
        """Highest version appearing in any window (0 if empty)."""
        return max((r.high_version for r in self._regions), default=0)

    def __len__(self) -> int:
        return len(self._regions)


def best_joint_snapshot_version(
    maps: Sequence[KnowledgeMap], key_range: KeyRange
) -> Optional[Version]:
    """Newest version at which the *union* of several watchers' regions
    covers ``key_range`` (Figure 5: "combining knowledge regions across
    multiple watchers to serve snapshot-consistent queries at a broader
    scale")."""
    candidates: set[Version] = set()
    for knowledge in maps:
        candidates.update(knowledge.candidate_versions(key_range))
    for version in sorted(candidates, reverse=True):
        remaining = [key_range]
        for knowledge in maps:
            for region in knowledge.regions:
                if not region.contains_version(version):
                    continue
                next_remaining: List[KeyRange] = []
                for piece in remaining:
                    next_remaining.extend(piece.subtract(region.key_range))
                remaining = next_remaining
                if not remaining:
                    return version
        if not remaining:
            return version
    return None
