"""Per-watcher delivery sessions.

Both watch implementations (built-in :class:`~repro.core.store_watch.
StoreWatch` and external :class:`~repro.core.watch_system.WatchSystem`)
deliver through a :class:`WatcherSession`, which provides uniform:

- FIFO delivery with configurable network latency and per-item consumer
  service time (slow watchers are modeled here);
- backlog accounting, and the §4.4 behaviour that distinguishes watch
  from pubsub: when a watcher's backlog exceeds its bound, the session
  **drops the queue and delivers a resync signal** instead of letting
  the backlog grow without bound or silently losing data;
- clean cancellation (a resync terminates the session; the client must
  re-watch, per §4.2.1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional, Tuple, Union

from repro._types import KeyRange, Version
from repro.core.api import Cancellable, WatchCallback
from repro.core.events import ChangeEvent, ProgressEvent
from repro.obs.trace import hops
from repro.sim.kernel import Simulation


@dataclass
class WatcherConfig:
    """Delivery parameters for one watch."""

    delivery_latency: float = 0.001
    #: Consumer-side processing time per delivered item (0 = instant).
    service_time: float = 0.0
    #: Queue length beyond which the session resyncs the watcher.
    max_backlog: int = 10_000

    def __post_init__(self) -> None:
        if self.delivery_latency < 0 or self.service_time < 0:
            raise ValueError("latency/service_time must be >= 0")
        if self.max_backlog < 1:
            raise ValueError("max_backlog must be >= 1")


_RESYNC = "resync"
_Item = Union[ChangeEvent, ProgressEvent, str]


class WatcherSession(Cancellable):
    """One active watch: range, position, delivery queue.

    ``__slots__``-only, and the delivery queue is allocated lazily on
    first enqueue: at E14 scale there is one of these per edge session
    feed, and for a mostly-idle population the instance dict plus an
    empty ``deque`` (~0.6KB) would be the dominant per-watch cost.
    Producers that touch ``_queue`` directly (the watch system's
    inlined fan-out path) share the same lazy contract: ``None`` means
    empty-and-unallocated.
    """

    __slots__ = (
        "sim", "key_range", "from_version", "callback", "config",
        "_on_closed", "tracer", "label", "predicate", "_queue",
        "_draining", "_active", "delivered_version", "events_delivered",
        "progress_delivered", "resyncs_signalled", "overflow_drops",
        "_low", "_high", "_cb_event", "_cb_progress", "_max_backlog",
        "_delivery_latency", "_service_time", "_pending", "_drain_cb",
    )

    def __init__(
        self,
        sim: Simulation,
        key_range: KeyRange,
        from_version: Version,
        callback: WatchCallback,
        config: WatcherConfig,
        on_closed: Optional[Callable[["WatcherSession"], None]] = None,
        predicate: Optional[Callable[[ChangeEvent], bool]] = None,
        tracer=None,
        label: str = "watcher",
    ) -> None:
        self.sim = sim
        self.key_range = key_range
        self.from_version = from_version
        self.callback = callback
        self.config = config
        self._on_closed = on_closed
        self.tracer = tracer
        self.label = label
        #: optional server-side event filter (k8s-selector style); the
        #: consumer receives only matching events.  Progress semantics
        #: are unchanged: progress still means "all *matching* events
        #: up to v supplied", which is exactly what a filtered
        #: materialization needs.
        self.predicate = predicate
        #: lazily allocated on first enqueue (None == empty)
        self._queue: Optional[Deque[_Item]] = None
        self._draining = False
        self._active = True
        #: highest change-event version delivered (monotone per key by
        #: producer contract; tracked for diagnostics/tests)
        self.delivered_version: Version = from_version
        self.events_delivered = 0
        self.progress_delivered = 0
        self.resyncs_signalled = 0
        self.overflow_drops = 0
        # hot-path prebinds: the fan-out loops run these per event, so
        # the config/range/callback indirections are resolved once here
        self._low = key_range.low
        self._high = key_range.high
        self._cb_event = callback.on_event
        self._cb_progress = callback.on_progress
        self._max_backlog = config.max_backlog
        self._delivery_latency = config.delivery_latency
        self._service_time = config.service_time
        self._pending: Optional[_Item] = None
        #: pre-bound so the offer paths post without allocating a bound
        #: method per drain kick
        self._drain_cb = self._drain_next

    # ------------------------------------------------------------------
    # Cancellable

    @property
    def active(self) -> bool:
        return self._active

    def cancel(self) -> None:
        if not self._active:
            return
        self._active = False
        if self._queue is not None:
            self._queue.clear()
        if self._on_closed is not None:
            self._on_closed(self)

    # ------------------------------------------------------------------
    # producer side (watch implementations call these)

    def offer_event(self, event: ChangeEvent) -> None:
        """Enqueue a change event if it matches this watch."""
        # body mirrors offer_matched with the range check added; both
        # inline _enqueue — this pair is the fan-out inner loop
        if not self._active:
            return
        if not self._low <= event.key < self._high:
            return
        if event.version <= self.from_version:
            return
        if self.predicate is not None and not self.predicate(event):
            return
        queue = self._queue
        if queue is None:
            queue = self._queue = deque()
        elif len(queue) >= self._max_backlog:
            self.signal_resync()
            return
        queue.append(event)
        if not self._draining:
            self._draining = True
            self.sim.post(self._delivery_latency, self._drain_cb)

    def offer_matched(self, event: ChangeEvent) -> None:
        """:meth:`offer_event` minus the range check, for producers that
        already know ``event.key`` is inside this session's range (the
        watch system's range-group fan-out)."""
        if not self._active:
            return
        if event.version <= self.from_version:
            return
        if self.predicate is not None and not self.predicate(event):
            return
        queue = self._queue
        if queue is None:
            queue = self._queue = deque()
        elif len(queue) >= self._max_backlog:
            self.signal_resync()
            return
        queue.append(event)
        if not self._draining:
            self._draining = True
            self.sim.post(self._delivery_latency, self._drain_cb)

    def offer_progress(self, progress: ProgressEvent) -> None:
        """Enqueue the intersection of a progress event with our range."""
        if not self._active:
            return
        # inlined KeyRange.intersect — this runs once per (progress
        # event, session) pair and the KeyRange round-trip dominates
        low = self._low if self._low >= progress.low else progress.low
        high = self._high if self._high <= progress.high else progress.high
        if low >= high:
            return
        self._enqueue(ProgressEvent(low, high, progress.version))

    def signal_resync(self) -> None:
        """Drop everything queued and deliver a resync.

        Used on producer-side retention loss and on watcher backlog
        overflow (§4.4 "send a resync signal to a consumer whenever its
        backlog is excessive").
        """
        if not self._active:
            return
        if self._queue is not None:
            self.overflow_drops += len(self._queue)
            self._queue.clear()
        self._enqueue(_RESYNC)

    def _enqueue(self, item: _Item) -> None:
        queue = self._queue
        if queue is None:
            queue = self._queue = deque()
        elif item is not _RESYNC and len(queue) >= self._max_backlog:
            self.signal_resync()
            return
        queue.append(item)
        if not self._draining:
            self._draining = True
            self.sim.post(self._delivery_latency, self._drain_cb)

    # ------------------------------------------------------------------
    # consumer side

    def _drain_next(self) -> None:
        # Iterative drain: with zero service time the whole queue is
        # delivered in a loop (no recursion — queues can be large);
        # with nonzero service time one item is delivered per step.
        # Items enqueued by a callback mid-drain are picked up by the
        # same loop at the same virtual time.
        queue = self._queue
        if queue is None:
            self._draining = False
            return
        if self._service_time > 0:
            if not self._active or not queue:
                self._draining = False
                return
            self._pending = queue.popleft()
            self.sim.post(self._service_time, self._service_step)
            return
        # change events with no tracer attached — the overwhelmingly
        # common item — are delivered inline; everything else (resync,
        # progress, traced deliveries) goes through _deliver
        deliver = self._deliver
        popleft = queue.popleft
        cb_event = self._cb_event
        change_event = ChangeEvent
        untraced = self.tracer is None
        delivered = 0  # batched into events_delivered at burst end
        while self._active and queue:
            item = popleft()
            if untraced and item.__class__ is change_event:
                delivered += 1
                if item.version > self.delivered_version:
                    self.delivered_version = item.version
                cb_event(item)
            else:
                # keep the counter coherent before _deliver's own
                # accounting (resync tracing reads overflow state)
                self.events_delivered += delivered
                delivered = 0
                deliver(item)
        self.events_delivered += delivered
        self._draining = False

    def _service_step(self) -> None:
        item = self._pending
        self._pending = None
        self._deliver(item)
        self._drain_next()

    def _deliver(self, item: _Item) -> None:
        if not self._active:
            return
        if item.__class__ is ChangeEvent:
            self.events_delivered += 1
            if item.version > self.delivered_version:
                self.delivered_version = item.version
            if self.tracer is not None:
                self.tracer.record(
                    hops.WATCH_DELIVER, self.label,
                    key=item.key, version=item.version, watcher=self.label,
                )
            self._cb_event(item)
            return
        if item is _RESYNC:
            self.resyncs_signalled += 1
            if self.tracer is not None:
                self.tracer.record(
                    hops.WATCH_RESYNC, self.label,
                    watcher=self.label, dropped=self.overflow_drops,
                )
            # the session ends; the client must snapshot + re-watch
            self._active = False
            if self._on_closed is not None:
                self._on_closed(self)
            self.callback.on_resync()
            return
        self.progress_delivered += 1
        self._cb_progress(item)

    @property
    def backlog(self) -> int:
        """Items queued but not yet delivered."""
        queue = self._queue
        return len(queue) if queue is not None else 0
