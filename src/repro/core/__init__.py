"""The paper's contribution: explicit storage with Watch (§4).

This package implements the unbundled model the paper proposes in place
of pubsub:

- :mod:`~repro.core.api` — the watch contracts, transliterated from the
  paper's §4.2 code listings: ``Watchable.watch(low, high, version,
  callback)``, ``WatchCallback.on_event/on_progress/on_resync``, and the
  ``Ingester`` interface (``append``/``progress``).
- :mod:`~repro.core.events` — ``ChangeEvent{key, mutation, version}``
  and range-scoped ``ProgressEvent{low, high, version}``.
- :mod:`~repro.core.watch_system` — a standalone watch system (the
  paper's unpublished *Snappy*, reimplemented from its contracts): soft
  state only, bounded retention, per-watcher backlog limits with resync
  signalling.
- :mod:`~repro.core.store_watch` — built-in watch directly on a store
  (the Spanner-change-streams / etcd quadrant of Figure 3).
- :mod:`~repro.core.bridge` — connects a store's commit history to an
  external watch system through ``Ingester``, including a *partitioned*
  bridge whose range-scoped progress exercises §4.2.2.
- :mod:`~repro.core.knowledge` — knowledge regions and their algebra
  (Figure 5).
- :mod:`~repro.core.linked_cache` — the consumer-side "linked cache"
  ([2] in the paper): a materialized, versioned view that speaks the
  watch protocol, applies events, tracks knowledge, and recovers via
  the snapshot+resync protocol.
- :mod:`~repro.core.snapshotter` — stitching snapshot-consistent reads
  from knowledge regions, within and across watchers (Figure 5's green
  box).
"""

from repro.core.events import ChangeEvent, ProgressEvent
from repro.core.api import Watchable, WatchCallback, Cancellable, Ingester, FnWatchCallback
from repro.core.knowledge import KnowledgeRegion, KnowledgeMap
from repro.core.stream import WatcherSession, WatcherConfig
from repro.core.watch_system import WatchSystem, WatchSystemConfig
from repro.core.store_watch import StoreWatch
from repro.core.bridge import DirectIngestBridge, PartitionedIngestBridge
from repro.core.linked_cache import LinkedCache, LinkedCacheConfig, SnapshotUnavailable
from repro.core.snapshotter import SnapshotStitcher, StitchResult
from repro.core.relay import WatchRelay
from repro.core.sharded_watch import ShardedWatchSystem

__all__ = [
    "ChangeEvent",
    "ProgressEvent",
    "Watchable",
    "WatchCallback",
    "FnWatchCallback",
    "Cancellable",
    "Ingester",
    "KnowledgeRegion",
    "KnowledgeMap",
    "WatcherSession",
    "WatcherConfig",
    "WatchSystem",
    "WatchSystemConfig",
    "StoreWatch",
    "DirectIngestBridge",
    "PartitionedIngestBridge",
    "LinkedCache",
    "LinkedCacheConfig",
    "SnapshotStitcher",
    "StitchResult",
    "SnapshotUnavailable",
    "WatchRelay",
    "ShardedWatchSystem",
]
