"""Watch relays: linked caches that re-serve the watch protocol.

§4.4 notes that "applications can choose between different watch
systems optimized for different scale points, e.g. degree of fan out".
A relay is the fan-out building block: it consumes a watch stream like
any linked cache, and simultaneously *offers* the watch contract to a
layer of downstream watchers — including serving their resync
snapshots from its own materialized, versioned state, so the fan-out
tree offloads both notification and snapshot traffic from the source.

Correctness across the relay's own failures:

- a relay resync means it *missed* upstream events; those can never be
  replayed downstream.  After the relay re-snapshots at version v, it
  raises its fan-out floor to v: downstream watchers that had not
  already advanced past v are resynced, and their snapshot fetch —
  served from the relay's fresh state — closes the gap.  No silent
  loss at any level of the tree.
- while the relay is mid-resync, downstream snapshot requests get
  :class:`~repro.core.linked_cache.SnapshotUnavailable` and retry.

Because the relay is itself a :class:`LinkedCache`, trees compose:
a relay can watch another relay.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro._types import KEY_MAX, KEY_MIN, Key, KeyRange, VERSION_ZERO, Version
from repro.core.api import Cancellable, Ingester, WatchCallback, Watchable
from repro.core.events import ChangeEvent, ProgressEvent
from repro.core.linked_cache import (
    LinkedCache,
    LinkedCacheConfig,
    SnapshotUnavailable,
)
from repro.core.stream import WatcherConfig
from repro.core.watch_system import (
    WatchSystem,
    WatchSystemConfig,
    _SYSTEM_TRACER,
)
from repro.obs.trace import hops
from repro.resilience.channel import ChannelConfig, ReliableChannel
from repro.sim.kernel import Simulation
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Network


class WatchRelay(LinkedCache, Watchable):
    """A linked cache that fans its stream out to downstream watchers."""

    def __init__(
        self,
        sim: Simulation,
        upstream,  # anything with watch_range (WatchSystem/StoreWatch/relay)
        snapshot_fn,
        key_range: KeyRange,
        config: Optional[LinkedCacheConfig] = None,
        fanout_config: Optional[WatchSystemConfig] = None,
        name: str = "relay",
        tracer=None,
    ) -> None:
        super().__init__(
            sim, upstream, snapshot_fn, key_range, config, name, tracer=tracer
        )
        self.fanout = WatchSystem(
            sim, fanout_config, name=f"{name}-fanout", tracer=tracer
        )

    # ------------------------------------------------------------------
    # upstream side: feed the fan-out as we apply

    def on_event(self, event: ChangeEvent) -> None:
        if self.state != "watching":
            return
        super().on_event(event)
        self.fanout.append(event)

    def on_progress(self, event: ProgressEvent) -> None:
        if self.state != "watching":
            return
        super().on_progress(event)
        overlap = self.key_range.intersect(event.key_range)
        if overlap is not None:
            self.fanout.progress(
                ProgressEvent(overlap.low, overlap.high, event.version)
            )

    def _finish_sync(self, generation: int) -> None:
        super()._finish_sync(generation)
        if self.state != "watching":
            return  # superseded/unavailable; a retry will come back here
        # events at or below the snapshot version never entered (or no
        # longer survive in) the fan-out buffer, so no downstream watch
        # below it can be caught up from the stream — true of the very
        # first sync as much as of a resync: a relay that snapshots a
        # non-empty store must floor out watchers starting from zero
        # instead of silently streaming them nothing.
        self.fanout.raise_floor(self.knowledge.max_known_version())

    # ------------------------------------------------------------------
    # downstream side

    def watch(
        self, low: Key, high: Key, version: Version, callback: WatchCallback
    ) -> Cancellable:
        return self.fanout.watch(low, high, version, callback)

    def watch_range(
        self,
        key_range: KeyRange,
        version: Version,
        callback: WatchCallback,
        config: Optional[WatcherConfig] = None,
        predicate=None,
        tracer=_SYSTEM_TRACER,
        progress: bool = True,
    ) -> Cancellable:
        return self.fanout.watch_range(
            key_range, version, callback, config, predicate=predicate,
            tracer=tracer, progress=progress,
        )

    def snapshot_for_downstream(
        self, key_range: KeyRange
    ) -> Tuple[Version, Dict[Key, Any]]:
        """Serve a resync snapshot from the relay's own state.

        The snapshot is taken at the newest version the relay provably
        knows for the requested range (knowledge regions), so it is as
        correct as a store snapshot, just possibly staler — which §4.2.1
        explicitly allows ("it is acceptable to read a stale snapshot").
        """
        version = self.snapshot_version(key_range)
        return version, self.data.items_at(key_range, version)

    def snapshot_version(self, key_range: KeyRange) -> Version:
        """The version ``snapshot_for_downstream`` would serve right now.

        Split out so edge frontends can probe the version *before*
        assembling items: during a mass-snapshot reconnect storm the
        relay state is frozen between commits, so every session sharing
        a key range would re-run the same range scan — the frontend
        caches the assembled items keyed by this version instead.
        """
        if self.state != "watching":
            raise SnapshotUnavailable(f"relay {self.name} is {self.state}")
        version = self.knowledge.best_snapshot_version(key_range)
        if version is None:
            raise SnapshotUnavailable(
                f"relay {self.name} has no complete knowledge of {key_range}"
            )
        return version

    @property
    def downstream_watchers(self) -> int:
        return self.fanout.active_watchers


class ReliableFanoutLink(WatchCallback):
    """Ships a watch stream across the network to a remote ingest tier.

    The fan-out edge of a relay tree that crosses a *lossy* link (e.g.
    source DC → edge PoP): change and progress events are forwarded
    through a :class:`~repro.resilience.channel.ReliableChannel` with
    ordered delivery, so the per-range event order the Ingester contract
    requires survives loss-and-retransmit reordering.  Fire-and-forget
    configs (``reliable=False``) model the naive alternative: a dropped
    event silently desynchronizes the remote tier forever.

    If the upstream declares resync (the link fell below the retained
    floor), the link re-watches from the current floor and ships a
    resync marker; the remote endpoint raises its ingester's floor,
    which forces *its* downstream watchers through their own
    snapshot+resync — loss recovery propagates down the tree instead of
    being silently absorbed.
    """

    def __init__(
        self,
        sim: Simulation,
        upstream,  # anything with watch_range (WatchSystem/relay)
        net: Network,
        name: str,
        remote: str,
        key_range: Optional[KeyRange] = None,
        from_version: Version = VERSION_ZERO,
        config: Optional[ChannelConfig] = None,
        watcher_config: Optional[WatcherConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
        causal_index=None,
    ) -> None:
        self.sim = sim
        self.upstream = upstream
        self.remote = remote
        self.key_range = key_range or KeyRange(KEY_MIN, KEY_MAX)
        self.watcher_config = watcher_config
        self.tracer = tracer if tracer is not None else net.tracer
        #: :class:`~repro.causal.stamp.StampIndex` (or None).  When set,
        #: each shipped event frame carries the event's causal stamp, so
        #: the metadata's byte cost lands in ``net.bytes.*`` and the
        #: remote endpoint can rebuild a local index for its causal
        #: delivery gates.
        self.causal_index = causal_index
        if config is None:
            config = ChannelConfig(ordered=True)
        self.channel = ReliableChannel(
            sim, net, name, config=config, metrics=metrics, tracer=tracer
        )
        self.events_shipped = 0
        self.progress_shipped = 0
        self.resyncs = 0
        self._handle = upstream.watch_range(
            self.key_range, from_version, self, config=watcher_config
        )

    # WatchCallback --------------------------------------------------

    def on_event(self, event: ChangeEvent) -> None:
        self.events_shipped += 1
        frame = {"kind": "event", "event": event}
        if self.causal_index is not None:
            stamp = self.causal_index.lookup(event.key, event.version)
            if stamp is not None:
                frame["causal"] = stamp
        seq = self.channel.send(self.remote, frame)
        if self.tracer is not None:
            self.tracer.record(
                hops.RELAY_SHIP, self.channel.name,
                key=event.key, version=event.version,
                channel=self.channel.name, dst=self.remote, seq=seq,
            )

    def on_progress(self, event: ProgressEvent) -> None:
        self.progress_shipped += 1
        self.channel.send(self.remote, {"kind": "progress", "event": event})

    def on_resync(self) -> None:
        self.resyncs += 1
        floor = getattr(self.upstream, "retained_floor", VERSION_ZERO)
        self.channel.send(self.remote, {"kind": "resync", "version": floor})
        self._handle = self.upstream.watch_range(
            self.key_range, floor, self, config=self.watcher_config
        )

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # Failable protocol (the link is the thing chaos experiments cut)
    def crash(self) -> None:
        self.channel.crash()

    def recover(self) -> None:
        self.channel.recover()


class ReliableFanoutEndpoint:
    """Remote end of a :class:`ReliableFanoutLink`: feeds an ingester."""

    def __init__(
        self,
        sim: Simulation,
        net: Network,
        name: str,
        ingester: Ingester,
        config: Optional[ChannelConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
        causal_index=None,
    ) -> None:
        self.ingester = ingester
        self.events_ingested = 0
        self.link_resyncs = 0
        #: local :class:`~repro.causal.stamp.StampIndex` (or None) that
        #: accumulates stamps arriving in-band on event frames
        self.causal_index = causal_index
        self.tracer = tracer if tracer is not None else net.tracer
        if config is None:
            config = ChannelConfig(ordered=True)
        self.channel = ReliableChannel(
            sim, net, name, handler=self._on_frame, config=config,
            metrics=metrics, tracer=tracer,
        )

    def _on_frame(self, src: str, frame: Dict[str, Any]) -> None:
        kind = frame["kind"]
        if kind == "event":
            self.events_ingested += 1
            event = frame["event"]
            if self.causal_index is not None:
                stamp = frame.get("causal")
                if stamp is not None:
                    self.causal_index.record(event.key, event.version, stamp)
            if self.tracer is not None:
                self.tracer.record(
                    hops.RELAY_INGEST, self.channel.name,
                    key=event.key, version=event.version,
                    endpoint=self.channel.name,
                )
            self.ingester.append(event)
        elif kind == "progress":
            self.ingester.progress(frame["event"])
        else:  # resync: push the gap down to our own watchers
            self.link_resyncs += 1
            raise_floor = getattr(self.ingester, "raise_floor", None)
            if raise_floor is not None:
                raise_floor(frame["version"])

    # Failable protocol
    def crash(self) -> None:
        self.channel.crash()

    def recover(self) -> None:
        self.channel.recover()
