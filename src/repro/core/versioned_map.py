"""A small client-side MVCC map.

Watch clients (linked caches, replication appliers) materialize the
stream into versioned state so they can serve reads *at a version* —
the capability knowledge regions promise.  :class:`VersionedMap` is the
storage for that: per-key version chains with range reads at a version
and pruning of old versions.

This mirrors the server-side MVCC in ``repro.storage.kv`` but is kept
separate on purpose: clients apply events they *received* (possibly a
re-applied duplicate after redelivery), so appends are idempotent and
tolerate equal versions, unlike the store's strict commit order.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro._types import Key, KeyRange, Mutation, Version
from repro.storage.keyindex import SortedKeyIndex


class VersionedMap:
    """Per-key version chains with snapshot reads and pruning."""

    def __init__(self) -> None:
        self._versions: Dict[Key, List[Version]] = {}
        self._mutations: Dict[Key, List[Mutation]] = {}
        self._key_index = SortedKeyIndex()

    def clear(self) -> None:
        self._versions.clear()
        self._mutations.clear()
        self._key_index.clear()

    # ------------------------------------------------------------------
    # writes

    def apply(self, key: Key, mutation: Mutation, version: Version) -> None:
        """Record ``key -> mutation`` at ``version``.

        Idempotent: re-applying the same (key, version) replaces rather
        than duplicates.  Out-of-order versions for a key are inserted
        in place (needed by concurrent replication appliers).
        """
        versions = self._versions.get(key)
        if versions is None:
            self._versions[key] = [version]
            self._mutations[key] = [mutation]
            self._key_index.add(key)  # amortized O(1), merged on read
            return
        idx = bisect.bisect_left(versions, version)
        if idx < len(versions) and versions[idx] == version:
            self._mutations[key][idx] = mutation
        else:
            versions.insert(idx, version)
            self._mutations[key].insert(idx, mutation)

    def load_snapshot(self, items: Dict[Key, Any], version: Version) -> None:
        """Replace all state with a snapshot's items at ``version``."""
        self.clear()
        for key, value in items.items():
            self.apply(key, Mutation.put(value), version)

    def prune_below(self, version: Version) -> int:
        """Drop versions strictly below ``version``, keeping the newest
        at-or-below it per key; returns versions dropped."""
        dropped = 0
        for key in list(self._versions):
            versions = self._versions[key]
            idx = bisect.bisect_right(versions, version) - 1
            if idx > 0:
                del versions[:idx]
                del self._mutations[key][:idx]
                dropped += idx
        return dropped

    # ------------------------------------------------------------------
    # reads

    def get_at(self, key: Key, version: Version) -> Optional[Any]:
        """Value visible at ``version`` (None if absent or deleted)."""
        versions = self._versions.get(key)
        if not versions:
            return None
        idx = bisect.bisect_right(versions, version) - 1
        if idx < 0:
            return None
        mutation = self._mutations[key][idx]
        return None if mutation.is_delete else mutation.value

    def get_latest(self, key: Key) -> Optional[Any]:
        """Newest value (None if absent or last write was a delete)."""
        mutations = self._mutations.get(key)
        if not mutations:
            return None
        mutation = mutations[-1]
        return None if mutation.is_delete else mutation.value

    def latest_version(self, key: Key) -> Optional[Version]:
        """Version of the newest write to ``key`` (None if never written)."""
        versions = self._versions.get(key)
        return versions[-1] if versions else None

    def items_at(self, key_range: KeyRange, version: Version) -> Dict[Key, Any]:
        """All live (key, value) in range at ``version``.

        Single-pass batch assembly over the key index: the chain lookup
        and the version probe are inlined with pre-bound locals instead
        of a ``get_at`` call per key.  Version chains are almost always
        read at-or-past their newest entry (snapshots are served at the
        relay's current knowledge version), so the common case is one
        tail compare per key and the bisect runs only for genuinely
        historical reads.  A mass-snapshot reconnect storm pays this
        scan once per (range, version) — see ``WatchEdgeFrontend``.
        """
        out: Dict[Key, Any] = {}
        versions_by_key = self._versions
        mutations_by_key = self._mutations
        bisect_right = bisect.bisect_right
        for key in self._key_index.irange(key_range.low, key_range.high):
            versions = versions_by_key[key]
            if versions[-1] <= version:
                idx = len(versions) - 1
            else:
                idx = bisect_right(versions, version) - 1
                if idx < 0:
                    continue
            mutation = mutations_by_key[key][idx]
            if not mutation.is_delete:
                out[key] = mutation.value
        return out

    def items_latest(self, key_range: KeyRange = KeyRange.all()) -> Dict[Key, Any]:
        """All live (key, value) in range at the newest versions."""
        out: Dict[Key, Any] = {}
        for key in self._keys_in(key_range):
            value = self.get_latest(key)
            if value is not None:
                out[key] = value
        return out

    def _keys_in(self, key_range: KeyRange) -> Iterator[Key]:
        return self._key_index.irange(key_range.low, key_range.high)

    def keys(self) -> Tuple[Key, ...]:
        return self._key_index.as_tuple()

    def version_count(self) -> int:
        """Total retained versions across keys (memory accounting)."""
        return sum(len(v) for v in self._versions.values())

    def __len__(self) -> int:
        return len(self._key_index)

    def __contains__(self, key: Key) -> bool:
        return key in self._versions
