"""Built-in watch: the store implements the watch contract directly.

This is the left column of Figure 3 — Spanner change streams, the
Kubernetes API server over etcd: "the store may directly implement the
watch contract" (§4.2.2).  :class:`StoreWatch` layers on any object
exposing a :class:`~repro.storage.history.ChangeHistory` (the MVCC
store, a filtered view, or the ingestion store) and:

- streams each committed write as a :class:`ChangeEvent`;
- emits a whole-keyspace :class:`ProgressEvent` after every commit
  (the history is totally ordered, so commit version v is a sound
  punctuation for all keys);
- answers a ``watch`` from an old version by replaying retained
  history, or signalling resync when the history has been truncated —
  the caller then snapshots the store and re-watches.
"""

from __future__ import annotations

from typing import List, Optional, Protocol

from repro._types import KEY_MAX, KEY_MIN, Key, KeyRange, Version
from repro.core.api import Cancellable, Watchable, WatchCallback
from repro.core.events import ChangeEvent, ProgressEvent
from repro.core.stream import WatcherConfig, WatcherSession
from repro.sim.kernel import Simulation
from repro.storage.history import ChangeHistory, CommittedTransaction


class HistoryBacked(Protocol):
    """Any store exposing an ordered commit history."""

    @property
    def history(self) -> ChangeHistory: ...  # noqa: E704


class StoreWatch(Watchable):
    """Watch served directly by the store (no extra system)."""

    def __init__(
        self,
        sim: Simulation,
        store: HistoryBacked,
        watcher_defaults: Optional[WatcherConfig] = None,
    ) -> None:
        self.sim = sim
        self.store = store
        self.watcher_defaults = watcher_defaults or WatcherConfig()
        self._sessions: List[WatcherSession] = []
        self._cancel_tail = store.history.tail(self._on_commit)
        self.resyncs_issued = 0

    def close(self) -> None:
        """Detach from the store history and cancel all sessions."""
        self._cancel_tail()
        for session in list(self._sessions):
            session.cancel()

    # ------------------------------------------------------------------
    # store side

    def _on_commit(self, commit: CommittedTransaction) -> None:
        # offers never synchronously close sessions (closures run at
        # delivery time via scheduled events), so no defensive copy;
        # events are built once per commit and shared across sessions
        version = commit.version
        events = [ChangeEvent(key, mutation, version) for key, mutation in commit.writes]
        progress = ProgressEvent(KEY_MIN, KEY_MAX, version)
        for session in self._sessions:
            for event in events:
                session.offer_event(event)
            session.offer_progress(progress)

    # ------------------------------------------------------------------
    # Watchable

    def watch(
        self, low: Key, high: Key, version: Version, callback: WatchCallback
    ) -> Cancellable:
        return self.watch_range(KeyRange(low, high), version, callback)

    def watch_range(
        self,
        key_range: KeyRange,
        version: Version,
        callback: WatchCallback,
        config: Optional[WatcherConfig] = None,
        predicate=None,
    ) -> Cancellable:
        """Watch with optional per-watch delivery configuration and an
        optional server-side event predicate."""
        session = WatcherSession(
            sim=self.sim,
            key_range=key_range,
            from_version=version,
            callback=callback,
            config=config or self.watcher_defaults,
            on_closed=self._session_closed,
            predicate=predicate,
        )
        self._sessions.append(session)
        history = self.store.history
        if not history.can_replay_from(version):
            self.resyncs_issued += 1
            session.signal_resync()
            return session
        for commit in history.since(version):
            for key, mutation in commit.writes:
                session.offer_event(ChangeEvent(key, mutation, commit.version))
        if history.last_version > version:
            session.offer_progress(
                ProgressEvent(KEY_MIN, KEY_MAX, history.last_version)
            )
        return session

    def _session_closed(self, session: WatcherSession) -> None:
        if session in self._sessions:
            self._sessions.remove(session)

    @property
    def active_watchers(self) -> int:
        return len(self._sessions)
