"""Bridges from a store's commit history to an external watch system.

The right column of Figure 3: a store with no native watch support
(MySQL/TiDB in the paper's Snappy deployment) conveys its changes to a
separate watch system through the :class:`~repro.core.api.Ingester`
contract.

Two bridges are provided:

- :class:`DirectIngestBridge` — a single tailer forwarding the whole
  history in order, with whole-keyspace progress.  Simple, but the
  forwarder is a serial bottleneck.
- :class:`PartitionedIngestBridge` — the §4.2.2 design: the keyspace is
  split into partitions, each forwarded *independently* (its own
  latency, so events interleave across partitions out of global version
  order), each emitting **range-scoped** progress for exactly its
  range.  "Progress events are scoped to key ranges rather than being
  global or tied to static partitions ... allowing each system layer to
  define its own partition boundaries which can evolve independently."

Both forward through FIFO channels so the per-range event order the
Ingester contract requires is preserved even with jittered latency.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro._types import KEY_MAX, KEY_MIN, KeyRange, Version, VERSION_ZERO
from repro.core.api import Ingester
from repro.core.events import ChangeEvent, ProgressEvent
from repro.sim.kernel import Simulation
from repro.storage.history import ChangeHistory, CommittedTransaction


class _FifoChannel:
    """Delivers callables after a latency, never reordering."""

    def __init__(self, sim: Simulation, base_latency: float, jitter: float) -> None:
        if base_latency < 0 or jitter < 0:
            raise ValueError("latency/jitter must be >= 0")
        self.sim = sim
        self.base_latency = base_latency
        self.jitter = jitter
        self._last_delivery = 0.0

    def send(self, fn: Callable[[], None]) -> None:
        delay = self.base_latency
        if self.jitter > 0:
            delay += self.sim.rng.random() * self.jitter
        at = max(self.sim.now() + delay, self._last_delivery)
        self._last_delivery = at
        self.sim.call_at(at, fn)


class DirectIngestBridge:
    """Single serial forwarder with whole-keyspace progress."""

    def __init__(
        self,
        sim: Simulation,
        history: ChangeHistory,
        ingester: Ingester,
        latency: float = 0.002,
        jitter: float = 0.0,
        progress_interval: float = 1.0,
    ) -> None:
        if progress_interval <= 0:
            raise ValueError("progress_interval must be positive")
        self.sim = sim
        self.ingester = ingester
        self._channel = _FifoChannel(sim, latency, jitter)
        self._forwarded: Version = VERSION_ZERO
        self._closed = False
        self.events_forwarded = 0
        self._cancel_tail = history.tail(self._on_commit)
        sim.call_after(progress_interval, self._tick)
        self._progress_interval = progress_interval

    def close(self) -> None:
        self._closed = True
        self._cancel_tail()

    def _on_commit(self, commit: CommittedTransaction) -> None:
        for key, mutation in commit.writes:
            event = ChangeEvent(key, mutation, commit.version)
            self.events_forwarded += 1
            self._channel.send(lambda event=event: self.ingester.append(event))
        self._forwarded = commit.version

    def _tick(self) -> None:
        if self._closed:
            return
        if self._forwarded > VERSION_ZERO:
            version = self._forwarded
            self._channel.send(
                lambda: self.ingester.progress(ProgressEvent(KEY_MIN, KEY_MAX, version))
            )
        self.sim.call_after(self._progress_interval, self._tick)


class _Partition:
    """One independent forwarder for a key range."""

    def __init__(
        self,
        sim: Simulation,
        key_range: KeyRange,
        ingester: Ingester,
        latency: float,
        jitter: float,
    ) -> None:
        self.key_range = key_range
        self.channel = _FifoChannel(sim, latency, jitter)
        self.ingester = ingester
        self.forwarded: Version = VERSION_ZERO
        self.events_forwarded = 0

    def forward(self, commit: CommittedTransaction) -> None:
        touched = False
        for key, mutation in commit.writes:
            if self.key_range.contains(key):
                event = ChangeEvent(key, mutation, commit.version)
                self.events_forwarded += 1
                self.channel.send(lambda event=event: self.ingester.append(event))
                touched = True
        # whether or not the commit touched this range, the partition's
        # knowledge of the store now extends to this version
        self.forwarded = commit.version
        del touched

    def emit_progress(self) -> None:
        if self.forwarded > VERSION_ZERO:
            event = ProgressEvent(self.key_range.low, self.key_range.high, self.forwarded)
            self.channel.send(lambda: self.ingester.progress(event))


class PartitionedIngestBridge:
    """N independent range partitions, each with range-scoped progress.

    Per-partition latencies differ (base + per-partition stagger +
    optional per-message jitter), so events reach the watch system out
    of global version order across ranges — which is exactly the
    condition range-scoped progress exists to make safe.
    """

    def __init__(
        self,
        sim: Simulation,
        history: ChangeHistory,
        ingester: Ingester,
        ranges: Sequence[KeyRange],
        base_latency: float = 0.002,
        latency_stagger: float = 0.001,
        jitter: float = 0.0,
        progress_interval: float = 1.0,
    ) -> None:
        if not ranges:
            raise ValueError("at least one partition range required")
        if progress_interval <= 0:
            raise ValueError("progress_interval must be positive")
        self.sim = sim
        self.partitions: List[_Partition] = [
            _Partition(
                sim,
                key_range,
                ingester,
                base_latency + idx * latency_stagger,
                jitter,
            )
            for idx, key_range in enumerate(ranges)
        ]
        self._closed = False
        self._progress_interval = progress_interval
        self._cancel_tail = history.tail(self._on_commit)
        sim.call_after(progress_interval, self._tick)

    def close(self) -> None:
        self._closed = True
        self._cancel_tail()

    def _on_commit(self, commit: CommittedTransaction) -> None:
        for partition in self.partitions:
            partition.forward(commit)

    def _tick(self) -> None:
        if self._closed:
            return
        for partition in self.partitions:
            partition.emit_progress()
        self.sim.call_after(self._progress_interval, self._tick)

    @property
    def events_forwarded(self) -> int:
        return sum(p.events_forwarded for p in self.partitions)


def even_ranges(n: int, alphabet_low: str = "a", alphabet_high: str = "z") -> List[KeyRange]:
    """Split the keyspace into ``n`` ranges, even over one leading
    character in ``[alphabet_low, alphabet_high]`` — a convenience for
    experiments whose keys are lowercase-prefixed."""
    if n < 1:
        raise ValueError("n must be >= 1")
    lo_ord, hi_ord = ord(alphabet_low), ord(alphabet_high) + 1
    span = hi_ord - lo_ord
    bounds = [KEY_MIN]
    for i in range(1, n):
        bounds.append(chr(lo_ord + (i * span) // n))
    bounds.append(KEY_MAX)
    out: List[KeyRange] = []
    for i in range(n):
        if bounds[i] < bounds[i + 1]:
            out.append(KeyRange(bounds[i], bounds[i + 1]))
    return out
