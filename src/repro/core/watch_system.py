"""A standalone watch system — the paper's *Snappy*, from its contracts.

The watch system sits between a store and its watchers (Figure 4):

- the store (or a bridge tailing its history) feeds it change events
  and range-scoped progress events through the :class:`Ingester`
  interface (§4.2.2);
- watchers attach through :class:`Watchable` and receive events,
  progress, and resync signals (§4.2.1).

Everything here is **soft state** (§4.2.2): a bounded in-memory buffer
of recent events plus per-range progress marks.  Two behaviours follow,
both central to the paper's argument:

- *bounded retention with notification*: when a watcher asks to start
  below the retained floor — or falls so far behind that its start
  position is evicted — it receives ``on_resync`` and recovers from a
  store snapshot.  Nothing is ever lost silently (contrast §3.1).
- *deletability*: :meth:`wipe` destroys all soft state at any moment;
  every watcher is resynced and the system rebuilds from the store
  "at the expense of some increased latency or staleness, but there is
  no data or consistency loss" (§4.2.2).  Experiment E8 exercises this.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro._types import Key, KeyRange, Version, VERSION_ZERO
from repro.core.api import Cancellable, Ingester, Watchable, WatchCallback
from repro.core.events import ChangeEvent, ProgressEvent
from repro.core.stream import WatcherConfig, WatcherSession
from repro.obs.trace import hops
from repro.sim.kernel import Simulation
from repro.sim.metrics import MetricsRegistry


@dataclass
class WatchSystemConfig:
    """Soft-state sizing and default delivery parameters."""

    #: Maximum buffered change events; the oldest are evicted beyond
    #: this, raising the retained floor.
    max_buffered_events: int = 100_000
    watcher_defaults: WatcherConfig = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.max_buffered_events < 1:
            raise ValueError("max_buffered_events must be >= 1")
        if self.watcher_defaults is None:
            self.watcher_defaults = WatcherConfig()


class WatchSystem(Watchable, Ingester):
    """Soft-state fan-out layer between a store and many watchers."""

    def __init__(
        self,
        sim: Simulation,
        config: Optional[WatchSystemConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        name: str = "watchsys",
        tracer=None,
    ) -> None:
        self.sim = sim
        self.config = config or WatchSystemConfig()
        self.metrics = metrics or MetricsRegistry()
        self.name = name
        self.tracer = tracer
        self._session_seq = 0  # deterministic per-session trace labels
        #: buffered events in ingest order (version order within any
        #: one ingest range, by the Ingester contract)
        self._buffer: Deque[ChangeEvent] = deque()
        #: versions <= this may have been evicted from the buffer (or
        #: never ingested, for the pre-start window)
        self._floor: Version = VERSION_ZERO
        #: latest progress mark per exact ingested range
        self._progress_marks: Dict[KeyRange, Version] = {}
        self._sessions: List[WatcherSession] = []
        self.soft_state_peak_events = 0
        self.events_ingested = 0
        self.events_evicted = 0
        self.wipes = 0

    # ------------------------------------------------------------------
    # Ingester (the store feeds us)

    def append(self, event: ChangeEvent) -> None:
        self.events_ingested += 1
        if self.tracer is not None:
            self.tracer.record(
                hops.WATCH_INGEST, self.name,
                key=event.key, version=event.version, system=self.name,
            )
        self._buffer.append(event)
        if len(self._buffer) > self.soft_state_peak_events:
            self.soft_state_peak_events = len(self._buffer)
        for session in list(self._sessions):
            session.offer_event(event)
        while len(self._buffer) > self.config.max_buffered_events:
            evicted = self._buffer.popleft()
            self.events_evicted += 1
            if evicted.version > self._floor:
                self._floor = evicted.version

    def progress(self, event: ProgressEvent) -> None:
        key_range = event.key_range
        previous = self._progress_marks.get(key_range, VERSION_ZERO)
        if event.version < previous:
            return  # stale duplicate from the store side
        self._progress_marks[key_range] = event.version
        for session in list(self._sessions):
            session.offer_progress(event)

    # ------------------------------------------------------------------
    # Watchable (consumers watch us)

    def watch(
        self, low: Key, high: Key, version: Version, callback: WatchCallback
    ) -> Cancellable:
        """Start a watch on ``[low, high)`` from ``version``.

        If ``version`` is below the retained floor, the watcher cannot
        be caught up from soft state: it receives an immediate resync
        (it should snapshot the store and re-watch — see
        :class:`~repro.core.linked_cache.LinkedCache`).
        """
        key_range = KeyRange(low, high)
        session = WatcherSession(
            sim=self.sim,
            key_range=key_range,
            from_version=version,
            callback=callback,
            config=self.config.watcher_defaults,
            on_closed=self._session_closed,
            tracer=self.tracer,
            label=self._next_label(),
        )
        self._sessions.append(session)
        self.metrics.counter(f"watch.{self.name}.watches").inc()
        if version < self._floor:
            self.metrics.counter(f"watch.{self.name}.resyncs").inc()
            session.signal_resync()
            return session
        # catch up from the retained buffer, then replay current
        # progress marks so knowledge windows open without waiting for
        # the next store-side progress tick
        for event in self._buffer:
            session.offer_event(event)
        for mark_range, mark_version in self._progress_marks.items():
            session.offer_progress(ProgressEvent(mark_range.low, mark_range.high, mark_version))
        return session

    def watch_range(
        self, key_range: KeyRange, version: Version, callback: WatchCallback,
        config: Optional[WatcherConfig] = None,
        predicate=None,
    ) -> Cancellable:
        """Like :meth:`watch` with a KeyRange, optional per-watch
        delivery configuration (slow watcher modeling), and an optional
        server-side event ``predicate`` (selector-style filtering)."""
        session = WatcherSession(
            sim=self.sim,
            key_range=key_range,
            from_version=version,
            callback=callback,
            config=config or self.config.watcher_defaults,
            on_closed=self._session_closed,
            predicate=predicate,
            tracer=self.tracer,
            label=self._next_label(),
        )
        self._sessions.append(session)
        self.metrics.counter(f"watch.{self.name}.watches").inc()
        if version < self._floor:
            self.metrics.counter(f"watch.{self.name}.resyncs").inc()
            session.signal_resync()
            return session
        for event in self._buffer:
            session.offer_event(event)
        for mark_range, mark_version in self._progress_marks.items():
            session.offer_progress(ProgressEvent(mark_range.low, mark_range.high, mark_version))
        return session

    def _next_label(self) -> str:
        self._session_seq += 1
        return f"{self.name}#{self._session_seq}"

    def _session_closed(self, session: WatcherSession) -> None:
        if session in self._sessions:
            self._sessions.remove(session)

    # ------------------------------------------------------------------
    # soft-state management

    def wipe(self) -> None:
        """Destroy all soft state (§4.2.2: recoverable by design).

        Buffer, progress marks, and the floor are discarded; the floor
        jumps to the highest version ever seen so any watcher position
        is stale; every active watcher is resynced.
        """
        self.wipes += 1
        highest = max((e.version for e in self._buffer), default=self._floor)
        for mark_version in self._progress_marks.values():
            if mark_version > highest:
                highest = mark_version
        self._buffer.clear()
        self._progress_marks.clear()
        self._floor = highest
        for session in list(self._sessions):
            session.signal_resync()

    def raise_floor(self, version: Version) -> None:
        """Declare history at or below ``version`` unservable.

        Used by relays after their own resync: the events they missed
        upstream can never be replayed downstream, so any watcher that
        has not already advanced past ``version`` must resync.  Buffered
        events at or below the new floor are dropped.
        """
        if version <= self._floor:
            return
        self._floor = version
        while self._buffer and self._buffer[0].version <= version:
            self._buffer.popleft()
            self.events_evicted += 1
        for session in list(self._sessions):
            if session.delivered_version < version:
                session.signal_resync()

    @property
    def retained_floor(self) -> Version:
        """Watch positions must be >= this to avoid a resync."""
        return self._floor

    @property
    def buffered_events(self) -> int:
        return len(self._buffer)

    @property
    def active_watchers(self) -> int:
        return len(self._sessions)

    def soft_state_bytes(self) -> int:
        """Current soft-state footprint (E8: this is *not* hard state)."""
        return sum(event.size() for event in self._buffer)
