"""A standalone watch system — the paper's *Snappy*, from its contracts.

The watch system sits between a store and its watchers (Figure 4):

- the store (or a bridge tailing its history) feeds it change events
  and range-scoped progress events through the :class:`Ingester`
  interface (§4.2.2);
- watchers attach through :class:`Watchable` and receive events,
  progress, and resync signals (§4.2.1).

Everything here is **soft state** (§4.2.2): a bounded in-memory buffer
of recent events plus per-range progress marks.  Two behaviours follow,
both central to the paper's argument:

- *bounded retention with notification*: when a watcher asks to start
  below the retained floor — or falls so far behind that its start
  position is evicted — it receives ``on_resync`` and recovers from a
  store snapshot.  Nothing is ever lost silently (contrast §3.1).
- *deletability*: :meth:`wipe` destroys all soft state at any moment;
  every watcher is resynced and the system rebuilds from the store
  "at the expense of some increased latency or staleness, but there is
  no data or consistency loss" (§4.2.2).  Experiment E8 exercises this.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from dataclasses import dataclass
from operator import attrgetter
from typing import Dict, Iterator, List, Optional, Tuple

from repro._types import Key, KeyRange, Version, VERSION_ZERO
from repro.core.api import Cancellable, Ingester, Watchable, WatchCallback
from repro.core.events import ChangeEvent, ProgressEvent
from repro.core.stream import WatcherConfig, WatcherSession
from repro.obs.trace import hops
from repro.sim.kernel import Simulation
from repro.sim.metrics import Counter, MetricsRegistry

_event_version = attrgetter("version")

#: sentinel: watch_range(tracer=...) default meaning "inherit"
_SYSTEM_TRACER = object()

#: Buffer-eviction bookkeeping uses a head offset instead of pops; the
#: dead prefix is compacted away once it crosses this length *and*
#: outgrows the live tail, keeping eviction amortized O(1).
_BUFFER_COMPACT_MIN = 8192


@dataclass
class WatchSystemConfig:
    """Soft-state sizing and default delivery parameters."""

    #: Maximum buffered change events; the oldest are evicted beyond
    #: this, raising the retained floor.
    max_buffered_events: int = 100_000
    watcher_defaults: WatcherConfig = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.max_buffered_events < 1:
            raise ValueError("max_buffered_events must be >= 1")
        if self.watcher_defaults is None:
            self.watcher_defaults = WatcherConfig()


class _SessionSet:
    """Insertion-ordered watcher set: O(1) add/discard, list-speed iteration.

    Iteration order is registration order — identical to the plain list
    these registries once were — but removal is O(1), which a reconnect
    storm needs (tens of thousands of closes against a 100k+ registry
    made ``list.remove`` quadratic).  Iteration walks a cached tuple
    rebuilt lazily after a mutation: the ingest hot loop pays tuple
    speed rather than dict-key speed, and the rebuild costs no more
    than the iteration that triggered it.
    """

    __slots__ = ("_members", "_snap")

    def __init__(self) -> None:
        self._members: Dict[WatcherSession, None] = {}
        self._snap: Optional[Tuple[WatcherSession, ...]] = ()

    def add(self, session: WatcherSession) -> None:
        self._members[session] = None
        self._snap = None

    def discard(self, session: WatcherSession) -> None:
        if session in self._members:
            del self._members[session]
            self._snap = None

    def __contains__(self, session: object) -> bool:
        return session in self._members

    def __len__(self) -> int:
        return len(self._members)

    def __bool__(self) -> bool:
        return bool(self._members)

    def __iter__(self) -> Iterator[WatcherSession]:
        snap = self._snap
        if snap is None:
            snap = self._snap = tuple(self._members)
        return iter(snap)


class WatchSystem(Watchable, Ingester):
    """Soft-state fan-out layer between a store and many watchers."""

    def __init__(
        self,
        sim: Simulation,
        config: Optional[WatchSystemConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        name: str = "watchsys",
        tracer=None,
    ) -> None:
        self.sim = sim
        self.config = config or WatchSystemConfig()
        self.metrics = metrics or MetricsRegistry()
        self.name = name
        self.tracer = tracer
        self._session_seq = 0  # deterministic per-session trace labels
        #: buffered events in ingest order (version order within any
        #: one ingest range, by the Ingester contract); ``_buf_head``
        #: marks the retained start — eviction advances it instead of
        #: popping, and the dead prefix is compacted periodically
        self._buffer: List[ChangeEvent] = []
        self._buf_head = 0
        #: True while the buffer is globally nondecreasing in version —
        #: the single-ingest-range common case — enabling the bisect
        #: catch-up in :meth:`watch`
        self._buf_sorted = True
        #: versions <= this may have been evicted from the buffer (or
        #: never ingested, for the pre-start window)
        self._floor: Version = VERSION_ZERO
        #: latest progress mark per exact ingested range
        self._progress_marks: Dict[KeyRange, Version] = {}
        #: insertion-ordered registries (:class:`_SessionSet`):
        #: iteration order matches the old list implementation exactly,
        #: while close is O(1) instead of O(sessions) — at E14 scale a
        #: reconnect storm closes tens of thousands of sessions against
        #: a 100k+ registry, where list.remove would be quadratic
        self._sessions = _SessionSet()
        #: the subset of sessions that subscribed to progress events;
        #: edge feeds opt out (they deliver values, not knowledge
        #: windows), keeping each progress tick O(interested) instead
        #: of O(sessions)
        self._progress_sessions = _SessionSet()
        #: sessions grouped by their exact key range, so an ingest only
        #: touches sessions whose range can match (registration order is
        #: preserved within a group; when several groups match one key
        #: the global registry is used so cross-group delivery order
        #: stays identical to the unindexed implementation)
        self._range_groups: Dict[KeyRange, _SessionSet] = {}
        #: (range, group) when exactly one group exists — the common
        #: sharded topology — letting ingest skip the group scan
        self._sole_group = None
        # counters created on first use so the registry's contents stay
        # identical to the f-string-per-call implementation
        self._watches_counter: Optional[Counter] = None
        self._resyncs_counter: Optional[Counter] = None
        self.soft_state_peak_events = 0
        self.events_ingested = 0
        self.events_evicted = 0
        self.wipes = 0

    # ------------------------------------------------------------------
    # Ingester (the store feeds us)

    def append(self, event: ChangeEvent) -> None:
        self.events_ingested += 1
        if self.tracer is not None:
            self.tracer.record(
                hops.WATCH_INGEST, self.name,
                key=event.key, version=event.version, system=self.name,
            )
        buf = self._buffer
        if self._buf_sorted and buf and event.version < buf[-1].version:
            self._buf_sorted = False
        buf.append(event)
        retained = len(buf) - self._buf_head
        if retained > self.soft_state_peak_events:
            self.soft_state_peak_events = retained
        # fan out through the range index: when exactly one range group
        # matches the key, only its sessions are touched (they skip the
        # redundant range check); overlapping groups fall back to the
        # global list so cross-group delivery order is unchanged
        key = event.key
        target: Optional[_SessionSet] = None
        multi = False
        sole = self._sole_group
        if sole is not None:
            rng, group = sole
            if rng.low <= key < rng.high:
                target = group
        else:
            for rng, group in self._range_groups.items():
                if rng.low <= key < rng.high:
                    if target is None:
                        target = group
                    else:
                        multi = True
                        break
        if multi:
            for session in self._sessions:
                session.offer_event(event)
        elif target is not None:
            sim_post = self.sim.post
            version = event.version
            for session in target:
                # inlined WatcherSession.offer_matched common case
                # (active, unfiltered, not backlogged); anything else
                # takes the full method
                if (
                    session._active
                    and session.predicate is None
                    and version > session.from_version
                ):
                    queue = session._queue
                    if queue is None:
                        queue = session._queue = deque()
                    if len(queue) < session._max_backlog:
                        queue.append(event)
                        if not session._draining:
                            session._draining = True
                            sim_post(session._delivery_latency, session._drain_cb)
                        continue
                session.offer_matched(event)
        while retained > self.config.max_buffered_events:
            evicted = buf[self._buf_head]
            self._buf_head += 1
            retained -= 1
            self.events_evicted += 1
            if evicted.version > self._floor:
                self._floor = evicted.version
        self._maybe_compact_buffer()

    def _maybe_compact_buffer(self) -> None:
        head = self._buf_head
        if head >= _BUFFER_COMPACT_MIN and head * 2 >= len(self._buffer):
            del self._buffer[:head]
            self._buf_head = 0

    def progress(self, event: ProgressEvent) -> None:
        key_range = event.key_range
        previous = self._progress_marks.get(key_range, VERSION_ZERO)
        if event.version < previous:
            return  # stale duplicate from the store side
        self._progress_marks[key_range] = event.version
        # offers never synchronously mutate the session list (closures
        # happen at delivery time, via scheduled events), so no copy
        for session in self._progress_sessions:
            session.offer_progress(event)

    # ------------------------------------------------------------------
    # Watchable (consumers watch us)

    def watch(
        self, low: Key, high: Key, version: Version, callback: WatchCallback
    ) -> Cancellable:
        """Start a watch on ``[low, high)`` from ``version``.

        If ``version`` is below the retained floor, the watcher cannot
        be caught up from soft state: it receives an immediate resync
        (it should snapshot the store and re-watch — see
        :class:`~repro.core.linked_cache.LinkedCache`).
        """
        return self.watch_range(KeyRange(low, high), version, callback)

    def watch_range(
        self, key_range: KeyRange, version: Version, callback: WatchCallback,
        config: Optional[WatcherConfig] = None,
        predicate=None,
        tracer=_SYSTEM_TRACER,
        progress: bool = True,
    ) -> Cancellable:
        """Like :meth:`watch` with a KeyRange, optional per-watch
        delivery configuration (slow watcher modeling), and an optional
        server-side event ``predicate`` (selector-style filtering).

        ``tracer`` overrides the per-watcher tracer (``None`` silences
        this watcher's delivery hops); by default the session inherits
        the system tracer.  The edge tier passes its sampled per-session
        tracer here so a million untraced feeds record nothing.

        ``progress=False`` unsubscribes the watcher from progress
        events entirely (no deliveries, no attach-time mark replay):
        the per-tick progress fan-out then costs O(subscribed), not
        O(sessions) — the difference between a knowledge-window
        consumer and a million value-only edge feeds."""
        session = WatcherSession(
            sim=self.sim,
            key_range=key_range,
            from_version=version,
            callback=callback,
            config=config or self.config.watcher_defaults,
            on_closed=self._session_closed,
            predicate=predicate,
            tracer=self.tracer if tracer is _SYSTEM_TRACER else tracer,
            label=self._next_label(),
        )
        self._sessions.add(session)
        if progress:
            self._progress_sessions.add(session)
        group = self._range_groups.get(key_range)
        if group is None:
            self._range_groups[key_range] = group = _SessionSet()
            group.add(session)
            self._sole_group = (
                (key_range, group) if len(self._range_groups) == 1 else None
            )
        else:
            group.add(session)
        counter = self._watches_counter
        if counter is None:
            counter = self._watches_counter = self.metrics.counter(
                f"watch.{self.name}.watches"
            )
        counter.inc()
        if version < self._floor:
            counter = self._resyncs_counter
            if counter is None:
                counter = self._resyncs_counter = self.metrics.counter(
                    f"watch.{self.name}.resyncs"
                )
            counter.inc()
            session.signal_resync()
            return session
        # catch up from the retained buffer, then replay current
        # progress marks so knowledge windows open without waiting for
        # the next store-side progress tick.  While the buffer is
        # version-sorted (the single-ingest-range common case) the
        # events at or below the start version — which the session
        # would drop anyway — are skipped by bisection.
        buf = self._buffer
        start = self._buf_head
        if self._buf_sorted:
            start = bisect_right(buf, version, start, len(buf), key=_event_version)
        for i in range(start, len(buf)):
            session.offer_event(buf[i])
        if progress:
            for mark_range, mark_version in self._progress_marks.items():
                session.offer_progress(ProgressEvent(mark_range.low, mark_range.high, mark_version))
        return session

    def _next_label(self) -> str:
        self._session_seq += 1
        return f"{self.name}#{self._session_seq}"

    def _session_closed(self, session: WatcherSession) -> None:
        if session not in self._sessions:
            return
        self._sessions.discard(session)
        self._progress_sessions.discard(session)
        group = self._range_groups.get(session.key_range)
        if group is not None:
            group.discard(session)
            if not group:
                del self._range_groups[session.key_range]
                groups = self._range_groups
                if len(groups) == 1:
                    self._sole_group = next(iter(groups.items()))
                else:
                    self._sole_group = None

    # ------------------------------------------------------------------
    # soft-state management

    def wipe(self) -> None:
        """Destroy all soft state (§4.2.2: recoverable by design).

        Buffer, progress marks, and the floor are discarded; the floor
        jumps to the highest version ever seen so any watcher position
        is stale; every active watcher is resynced.
        """
        self.wipes += 1
        highest = max(
            (e.version for e in self._iter_buffer()), default=self._floor
        )
        for mark_version in self._progress_marks.values():
            if mark_version > highest:
                highest = mark_version
        self._buffer.clear()
        self._buf_head = 0
        self._buf_sorted = True
        self._progress_marks.clear()
        self._floor = highest
        for session in list(self._sessions):
            session.signal_resync()

    def _iter_buffer(self):
        buf = self._buffer
        for i in range(self._buf_head, len(buf)):
            yield buf[i]

    def raise_floor(self, version: Version) -> None:
        """Declare history at or below ``version`` unservable.

        Used by relays after their own resync: the events they missed
        upstream can never be replayed downstream, so any watcher that
        has not already advanced past ``version`` must resync.  Buffered
        events at or below the new floor are dropped.
        """
        if version <= self._floor:
            return
        self._floor = version
        buf = self._buffer
        head = self._buf_head
        while head < len(buf) and buf[head].version <= version:
            head += 1
            self.events_evicted += 1
        if head >= len(buf):
            buf.clear()
            head = 0
            self._buf_sorted = True
        self._buf_head = head
        self._maybe_compact_buffer()
        for session in list(self._sessions):
            if session.delivered_version < version:
                session.signal_resync()

    @property
    def retained_floor(self) -> Version:
        """Watch positions must be >= this to avoid a resync."""
        return self._floor

    @property
    def buffered_events(self) -> int:
        return len(self._buffer) - self._buf_head

    @property
    def active_watchers(self) -> int:
        return len(self._sessions)

    def soft_state_bytes(self) -> int:
        """Current soft-state footprint (E8: this is *not* hard state)."""
        return sum(event.size() for event in self._iter_buffer())
