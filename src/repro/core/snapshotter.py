"""Stitching snapshot-consistent reads from knowledge regions.

Figure 5's green box: a query range can be served snapshot-consistently
if, at some common version v, the union of available knowledge regions
covers it — within one watcher or combined across several.  Because
each (key, version) is immutable, any watcher that knows a piece at v
returns the same bytes as any other, so stitching is sound.

:class:`SnapshotStitcher` does the version search and the piecewise
read over a set of :class:`~repro.core.linked_cache.LinkedCache`
instances (typically the auto-sharded cache/replica servers of §4.3,
whose ranges may overlap and be "redundant ... for improved
availability and performance").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro._types import Key, KeyRange, Version
from repro.core.knowledge import best_joint_snapshot_version
from repro.core.linked_cache import LinkedCache


@dataclass(frozen=True)
class StitchResult:
    """A successfully stitched snapshot."""

    version: Version
    items: Dict[Key, Any]
    #: (piece, cache name) assignments used — for tests and reporting.
    pieces: Tuple[Tuple[KeyRange, str], ...]

    @property
    def piece_count(self) -> int:
        return len(self.pieces)


class SnapshotStitcher:
    """Serves snapshot reads over a fleet of watchers."""

    def __init__(self, caches: Sequence[LinkedCache]) -> None:
        self.caches = list(caches)
        self.served = 0
        self.rejected = 0

    def stitch(
        self, key_range: KeyRange, version: Optional[Version] = None
    ) -> Optional[StitchResult]:
        """Snapshot of ``key_range``.

        If ``version`` is None, the newest jointly servable version is
        chosen.  Returns None when no version covers the range — the
        caller falls back to the store (correct, just slower).
        """
        maps = [cache.knowledge for cache in self.caches]
        if version is None:
            version = best_joint_snapshot_version(maps, key_range)
            if version is None:
                self.rejected += 1
                return None
        assignments = self._cover(key_range, version)
        if assignments is None:
            self.rejected += 1
            return None
        items: Dict[Key, Any] = {}
        pieces: List[Tuple[KeyRange, str]] = []
        for piece, cache in assignments:
            items.update(cache.items_at(piece, version))
            pieces.append((piece, cache.name))
        self.served += 1
        return StitchResult(version=version, items=items, pieces=tuple(pieces))

    def _cover(
        self, key_range: KeyRange, version: Version
    ) -> Optional[List[Tuple[KeyRange, LinkedCache]]]:
        """Greedy cover of ``key_range`` by regions valid at ``version``."""
        remaining = [key_range]
        assignments: List[Tuple[KeyRange, LinkedCache]] = []
        for cache in self.caches:
            if not remaining:
                break
            for region in cache.knowledge.regions:
                if not region.contains_version(version):
                    continue
                next_remaining: List[KeyRange] = []
                for piece in remaining:
                    overlap = piece.intersect(region.key_range)
                    if overlap is None:
                        next_remaining.append(piece)
                        continue
                    assignments.append((overlap, cache))
                    next_remaining.extend(piece.subtract(region.key_range))
                remaining = next_remaining
                if not remaining:
                    break
        if remaining:
            return None
        return assignments

    def servable_version(self, key_range: KeyRange) -> Optional[Version]:
        """Newest version a stitch of ``key_range`` would use, or None."""
        return best_joint_snapshot_version(
            [cache.knowledge for cache in self.caches], key_range
        )
