"""Watch-stream events (paper §4.2, verbatim structures).

``ChangeEvent`` carries one key mutation at a transaction version
("account A has balance $20 as of version 40").  ``ProgressEvent`` is
the punctuation of the stream: it asserts that *all* change events
affecting ``[low, high)`` with version <= ``version`` have been
supplied.  Progress events are scoped to key ranges rather than global
or static partitions — the property §4.2.2 credits with letting every
layer shard independently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._types import Key, KeyRange, Mutation, Version


@dataclass(frozen=True)
class ChangeEvent:
    """``struct ChangeEvent { Key key; Mutation mutation; Version version; }``"""

    key: Key
    mutation: Mutation
    version: Version

    def size(self) -> int:
        """Rough encoded size (soft-state accounting, experiment E8)."""
        return len(self.key) + 8 + self.mutation.size()


@dataclass(frozen=True)
class ProgressEvent:
    """``struct ProgressEvent { Key low; Key high; Version version; }``

    Contract (punctuation soundness): after a watcher receives
    ``ProgressEvent(low, high, v)``, it will never receive a
    ``ChangeEvent`` with ``low <= key < high`` and ``version <= v``.
    """

    low: Key
    high: Key
    version: Version

    @property
    def key_range(self) -> KeyRange:
        return KeyRange(self.low, self.high)

    def covers(self, key: Key) -> bool:
        return self.low <= key < self.high


from repro.sim.wire import register as _wire_register  # noqa: E402

_wire_register(ChangeEvent, "core.ChangeEvent", ("key", "mutation", "version"))
_wire_register(ProgressEvent, "core.ProgressEvent", ("low", "high", "version"))
