"""A sharded watch system: horizontal scaling of the watch layer.

§4.4: "an external watch system can provide watch on top of any store
that supports the ingestion interface.  Applications can choose between
different watch systems optimized for different scale points."  This
module scales the watch layer itself: the keyspace is partitioned over
N independent :class:`~repro.core.watch_system.WatchSystem` shards.

- ``Ingester``: appends route by key; progress events are split at
  shard boundaries (range-scoped progress makes this sound — §4.2.2's
  "each system layer [can] define its own partition boundaries").
- ``Watchable``: a watch over a range spanning shards becomes one
  sub-session per shard, wrapped so the caller sees a single stream.
  Per-key version order is preserved (each key lives in one shard);
  cross-shard interleaving is, as everywhere in this model, made safe
  by range-scoped progress.  If any shard resyncs the composite watch,
  the other sub-sessions are cancelled and the caller gets exactly one
  ``on_resync``.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence

from repro._types import Key, KeyRange, Version
from repro.core.api import Cancellable, Ingester, Watchable, WatchCallback
from repro.core.events import ChangeEvent, ProgressEvent
from repro.core.stream import WatcherConfig
from repro.core.watch_system import WatchSystem, WatchSystemConfig
from repro.sim.kernel import Simulation


class _CompositeWatch(Cancellable):
    """One logical watch backed by a sub-session per shard."""

    def __init__(self, callback: WatchCallback) -> None:
        self._callback = callback
        self._subs: List[Cancellable] = []
        self._active = True
        self._resynced = False

    def add(self, sub: Cancellable) -> None:
        self._subs.append(sub)

    @property
    def active(self) -> bool:
        return self._active and not self._resynced

    def cancel(self) -> None:
        self._active = False
        for sub in self._subs:
            sub.cancel()

    # callbacks forwarded from sub-sessions --------------------------------

    def on_event(self, event: ChangeEvent) -> None:
        if self.active:
            self._callback.on_event(event)

    def on_progress(self, event: ProgressEvent) -> None:
        if self.active:
            self._callback.on_progress(event)

    def on_resync(self) -> None:
        if not self.active:
            return
        self._resynced = True
        for sub in self._subs:
            sub.cancel()
        self._callback.on_resync()


class _SubCallback(WatchCallback):
    def __init__(self, composite: _CompositeWatch) -> None:
        self._composite = composite

    def on_event(self, event: ChangeEvent) -> None:
        self._composite.on_event(event)

    def on_progress(self, event: ProgressEvent) -> None:
        self._composite.on_progress(event)

    def on_resync(self) -> None:
        self._composite.on_resync()


class ShardedWatchSystem(Watchable, Ingester):
    """N independent watch-system shards behind one facade."""

    def __init__(
        self,
        sim: Simulation,
        ranges: Sequence[KeyRange],
        config: Optional[WatchSystemConfig] = None,
        name: str = "sharded-watch",
    ) -> None:
        if not ranges:
            raise ValueError("need at least one shard range")
        ordered = sorted(ranges, key=lambda r: r.low)
        for a, b in zip(ordered, ordered[1:]):
            if a.high != b.low:
                raise ValueError(f"shard ranges must tile the keyspace: {a} | {b}")
        self.sim = sim
        self.name = name
        self.ranges: List[KeyRange] = list(ordered)
        self._lows = [r.low for r in ordered]
        self.shards: List[WatchSystem] = [
            WatchSystem(sim, config, name=f"{name}-{idx}")
            for idx in range(len(ordered))
        ]

    def _shard_for(self, key: Key) -> WatchSystem:
        idx = bisect.bisect_right(self._lows, key) - 1
        return self.shards[max(idx, 0)]

    # ------------------------------------------------------------------
    # Ingester

    def append(self, event: ChangeEvent) -> None:
        self._shard_for(event.key).append(event)

    def progress(self, event: ProgressEvent) -> None:
        for shard_range, shard in zip(self.ranges, self.shards):
            overlap = shard_range.intersect(event.key_range)
            if overlap is not None:
                shard.progress(
                    ProgressEvent(overlap.low, overlap.high, event.version)
                )

    # ------------------------------------------------------------------
    # Watchable

    def watch(
        self, low: Key, high: Key, version: Version, callback: WatchCallback
    ) -> Cancellable:
        return self.watch_range(KeyRange(low, high), version, callback)

    def watch_range(
        self,
        key_range: KeyRange,
        version: Version,
        callback: WatchCallback,
        config: Optional[WatcherConfig] = None,
        predicate=None,
    ) -> Cancellable:
        composite = _CompositeWatch(callback)
        sub_callback = _SubCallback(composite)
        for shard_range, shard in zip(self.ranges, self.shards):
            overlap = shard_range.intersect(key_range)
            if overlap is None:
                continue
            composite.add(
                shard.watch_range(
                    overlap, version, sub_callback,
                    config=config, predicate=predicate,
                )
            )
        return composite

    # ------------------------------------------------------------------
    # introspection

    @property
    def active_watchers(self) -> int:
        return sum(s.active_watchers for s in self.shards)

    @property
    def buffered_events(self) -> int:
        return sum(s.buffered_events for s in self.shards)

    def shard_loads(self) -> List[int]:
        """Events ingested per shard (balance diagnostics)."""
        return [s.events_ingested for s in self.shards]

    def wipe_shard(self, index: int) -> None:
        """Destroy one shard's soft state; only its watchers resync —
        the failure-isolation benefit of sharding the watch layer."""
        self.shards[index].wipe()
