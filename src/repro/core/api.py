"""The watch contracts (paper §4.2.1 and §4.2.2).

The paper defines three interfaces; we transliterate them to Python:

.. code-block:: none

    class Watchable {
      Cancellable watch(Key low, Key high, Version version,
                        WatchCallback callback);
    }
    class WatchCallback {
      void onEvent(ChangeEvent event);
      void onProgress(ProgressEvent event);
      void onResync();
    }
    class Ingester {
      void append(ChangeEvent event);
      void progress(ProgressEvent event);
    }

Semantics implemented throughout this package:

- ``watch`` streams every change with ``low <= key < high`` and
  ``version > from_version``, in per-key version order, interleaved
  with range-scoped progress events.
- ``on_resync`` means "the version known to the watcher is no longer
  retained": the watcher must read a (possibly stale) snapshot from the
  exposed store and re-watch from the snapshot's version (§4.2.1).
  After signalling resync the producing side stops the stream; the
  watch must be re-established.
- ``Ingester`` is how a store conveys its changes to an *external*
  watch system; progress may be scoped to any key range, letting the
  store's partitioning evolve independently of the watch system's and
  the consumers' (§4.2.2).
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

from repro._types import Key, Version
from repro.core.events import ChangeEvent, ProgressEvent


class Cancellable(abc.ABC):
    """Handle to an active watch; cancel to stop the stream."""

    #: empty so ``__slots__`` subclasses (WatcherSession at E14 scale)
    #: don't inherit an instance dict from the base
    __slots__ = ()

    @abc.abstractmethod
    def cancel(self) -> None:
        """Stop the stream; no callbacks fire after cancellation settles."""

    @property
    @abc.abstractmethod
    def active(self) -> bool:
        """True while the stream can still deliver callbacks."""


class WatchCallback(abc.ABC):
    """Consumer-side callbacks of the watch stream."""

    @abc.abstractmethod
    def on_event(self, event: ChangeEvent) -> None:
        """A change subsequent to the requested version."""

    @abc.abstractmethod
    def on_progress(self, event: ProgressEvent) -> None:
        """All changes for ``[low, high)`` up to ``version`` supplied."""

    @abc.abstractmethod
    def on_resync(self) -> None:
        """The watcher's version is no longer retained; snapshot and
        re-watch from the snapshot version."""


class FnWatchCallback(WatchCallback):
    """Adapter building a callback from plain functions (tests, examples).

    The supplied functions are exposed directly as instance attributes
    (shadowing the class methods), so delivery hot loops invoke them
    without a wrapper frame per event.
    """

    def __init__(
        self,
        on_event: Optional[Callable[[ChangeEvent], None]] = None,
        on_progress: Optional[Callable[[ProgressEvent], None]] = None,
        on_resync: Optional[Callable[[], None]] = None,
    ) -> None:
        self.on_event = on_event or (lambda event: None)
        self.on_progress = on_progress or (lambda event: None)
        self.on_resync = on_resync or (lambda: None)

    # the legacy ``_on_event``-style attributes stay assignable (some
    # experiments swap handlers in before watching); they alias the
    # public attributes so both views agree
    @property
    def _on_event(self) -> Callable[[ChangeEvent], None]:
        return self.on_event

    @_on_event.setter
    def _on_event(self, fn: Callable[[ChangeEvent], None]) -> None:
        self.on_event = fn

    @property
    def _on_progress(self) -> Callable[[ProgressEvent], None]:
        return self.on_progress

    @_on_progress.setter
    def _on_progress(self, fn: Callable[[ProgressEvent], None]) -> None:
        self.on_progress = fn

    @property
    def _on_resync(self) -> Callable[[], None]:
        return self.on_resync

    @_on_resync.setter
    def _on_resync(self, fn: Callable[[], None]) -> None:
        self.on_resync = fn

    def on_event(self, event: ChangeEvent) -> None:  # pragma: no cover
        raise NotImplementedError  # shadowed by the instance attribute

    def on_progress(self, event: ProgressEvent) -> None:  # pragma: no cover
        raise NotImplementedError  # shadowed by the instance attribute

    def on_resync(self) -> None:  # pragma: no cover
        raise NotImplementedError  # shadowed by the instance attribute


class Watchable(abc.ABC):
    """Anything consumers can watch: a store with built-in watch, an
    external watch system, or a filtered view wrapper."""

    @abc.abstractmethod
    def watch(
        self, low: Key, high: Key, version: Version, callback: WatchCallback
    ) -> Cancellable:
        """Stream changes in ``[low, high)`` after ``version``."""


class Ingester(abc.ABC):
    """Store-to-watch-system feed (§4.2.2)."""

    @abc.abstractmethod
    def append(self, event: ChangeEvent) -> None:
        """One change event, in version order per key."""

    @abc.abstractmethod
    def progress(self, event: ProgressEvent) -> None:
        """All changes for the range up to ``version`` now appended."""
