"""The consumer side of the watch protocol: a linked cache.

"Applications may directly implement the watch callback interface, or
may leverage linked caches similar to [2] that speak that protocol"
(§4.2.1).  :class:`LinkedCache` is that client, and the building block
for the cache nodes, replication appliers, and reconciler workers in
this reproduction.  It owns the full client state machine:

1. **sync** — read a snapshot of its key range from the exposed store
   (possibly stale, possibly from a replica: the snapshot function is
   pluggable), load it, and reset knowledge to ``[v_snap, v_snap]``;
2. **watch** — watch from the snapshot version; apply each change event
   into a local :class:`~repro.core.versioned_map.VersionedMap`; extend
   knowledge windows on each range-scoped progress event;
3. **resync** — on ``on_resync`` (producer-side retention loss, watcher
   backlog overflow, or watch-system wipe), drop to step 1.  Recovery
   is *programmatic* — no operator, no data loss; its duration is
   recorded so experiments can report time-to-recover (§4.4).

Reads come in two consistencies, both local:

- :meth:`get_latest` — eventually consistent, best effort;
- :meth:`read_at` / :meth:`snapshot_read` — snapshot reads, answered
  only when the knowledge map proves completeness (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro._types import Key, KeyRange, Version
from repro.core.api import Cancellable, WatchCallback
from repro.core.events import ChangeEvent, ProgressEvent
from repro.core.knowledge import KnowledgeMap
from repro.core.stream import WatcherConfig
from repro.core.versioned_map import VersionedMap
from repro.obs.trace import hops
from repro.resilience.breaker import CircuitBreaker, CircuitBreakerConfig
from repro.resilience.retry import RetryPolicy
from repro.sim.kernel import Simulation
from repro.sim.metrics import MetricsRegistry

#: Reads a snapshot of a key range: returns (snapshot version, items).
SnapshotFn = Callable[[KeyRange], Tuple[Version, Dict[Key, Any]]]


class SnapshotUnavailable(RuntimeError):
    """Raised by a snapshot function that cannot serve right now (e.g. a
    relay that is itself mid-resync); the linked cache retries after its
    snapshot latency instead of failing."""


@dataclass
class LinkedCacheConfig:
    """Client behaviour parameters."""

    #: Time to fetch a snapshot from the store (§4.2.1 notes this can be
    #: served by a replica; model that by passing a cheaper latency and
    #: a staler snapshot_fn).
    snapshot_latency: float = 0.05
    #: Per-watch delivery parameters (service time models a slow client).
    watcher: WatcherConfig = field(default_factory=WatcherConfig)
    #: If set, prune local versions more than this many version units
    #: behind the newest known progress (bounds client memory).
    prune_window: Optional[int] = None
    #: Backoff schedule for retrying an unavailable snapshot source
    #: (:class:`SnapshotUnavailable`).  None keeps the legacy fixed
    #: retry at ``max(snapshot_latency, 0.01)``.  Exhausting the policy
    #: does not abandon the sync — a linked cache must eventually serve
    #: — it clamps further retries to the policy's ``max_delay``.
    snapshot_retry: Optional[RetryPolicy] = None
    #: Circuit breaker over the snapshot source: repeated
    #: SnapshotUnavailable failures trip it, and while it is open the
    #: cache waits out the cooldown instead of hammering a source that
    #: is itself recovering (e.g. a mid-resync relay).
    source_breaker: Optional[CircuitBreakerConfig] = None

    def __post_init__(self) -> None:
        if self.snapshot_latency < 0:
            raise ValueError("snapshot_latency must be >= 0")
        if self.prune_window is not None and self.prune_window < 0:
            raise ValueError("prune_window must be >= 0 when set")


class LinkedCache(WatchCallback):
    """Materialized, versioned view of a watched key range."""

    def __init__(
        self,
        sim: Simulation,
        watchable,  # WatchSystem or StoreWatch (anything with watch_range)
        snapshot_fn: SnapshotFn,
        key_range: KeyRange,
        config: Optional[LinkedCacheConfig] = None,
        name: str = "cache",
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> None:
        self.sim = sim
        self.watchable = watchable
        self.snapshot_fn = snapshot_fn
        self.key_range = key_range
        self.config = config or LinkedCacheConfig()
        self.name = name
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer
        self._snapshot_failures = 0
        self._source_breaker: Optional[CircuitBreaker] = None
        if self.config.source_breaker is not None:
            self._source_breaker = CircuitBreaker(
                sim,
                name=f"snapshot.{name}",
                config=self.config.source_breaker,
                metrics=self.metrics,
            )
        self.data = VersionedMap()
        self.knowledge = KnowledgeMap()
        self.state = "idle"  # idle | syncing | watching | stopped
        self._watch_handle: Optional[Cancellable] = None
        self._sync_generation = 0
        # observability
        self.resync_count = 0
        self.snapshots_taken = 0
        self.events_applied = 0
        self.progress_seen = 0
        self.recovery_times: List[float] = []
        self._resync_started_at: Optional[float] = None
        #: consecutive resyncs without forward progress — drives
        #: exponential backoff so a stale snapshot source (e.g. a
        #: lagging replica below the watch floor) cannot cause a
        #: resync storm
        self._consecutive_resyncs = 0

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> None:
        """Begin the initial sync (snapshot then watch)."""
        if self.state != "idle":
            raise RuntimeError(f"cannot start cache in state {self.state!r}")
        self._begin_sync()

    def stop(self) -> None:
        self.state = "stopped"
        self._sync_generation += 1
        if self._watch_handle is not None:
            self._watch_handle.cancel()
            self._watch_handle = None

    def suspend(self) -> None:
        """Model the consumer going down: the watch is dropped and no
        callbacks are processed until :meth:`resume`.  Local state is
        kept (a restarting process with its disk intact)."""
        if self.state in ("stopped", "down"):
            return
        self._sync_generation += 1  # cancel any in-flight sync
        if self._watch_handle is not None:
            self._watch_handle.cancel()
            self._watch_handle = None
        self.state = "down"

    def resume(self) -> None:
        """Come back up and re-watch from the last known position; the
        producer side decides whether that position is still serviceable
        (catch-up) or stale (resync)."""
        if self.state != "down":
            return
        self.state = "watching"
        self._watch_handle = self.watchable.watch_range(
            self.key_range,
            self.knowledge.max_known_version(),
            self,
            config=self.config.watcher,
        )

    def set_key_range(self, key_range: KeyRange) -> None:
        """Change the watched range (auto-sharder handoff): drops the
        current watch and resyncs over the new range."""
        self.key_range = key_range
        if self.state == "stopped":
            return
        if self._watch_handle is not None:
            self._watch_handle.cancel()
            self._watch_handle = None
        self._begin_sync()

    def _begin_sync(self) -> None:
        self.state = "syncing"
        self._sync_generation += 1
        generation = self._sync_generation
        if self._resync_started_at is None:
            self._resync_started_at = self.sim.now()
        backoff = min(2 ** min(self._consecutive_resyncs, 6), 64)
        self.sim.call_after(
            self.config.snapshot_latency * backoff,
            lambda: self._finish_sync(generation),
        )

    def _finish_sync(self, generation: int) -> None:
        if generation != self._sync_generation or self.state == "stopped":
            return  # superseded by a newer sync or a stop
        breaker = self._source_breaker
        if breaker is not None and not breaker.allow():
            # breaker open: wait out the cooldown instead of hammering a
            # source that is itself recovering
            self.sim.call_after(
                max(breaker.cooldown_remaining(), 0.01),
                lambda: self._finish_sync(generation),
            )
            return
        try:
            version, items = self.snapshot_fn(self.key_range)
        except SnapshotUnavailable:
            # the snapshot source cannot serve right now; retry on the
            # configured backoff schedule
            if breaker is not None:
                breaker.record_failure()
            self._snapshot_failures += 1
            self.metrics.counter("resilience.snapshot.retries").inc()
            self.sim.call_after(
                self._snapshot_retry_delay(),
                lambda: self._finish_sync(generation),
            )
            return
        if breaker is not None:
            breaker.record_success()
        self._snapshot_failures = 0
        self.snapshots_taken += 1
        self.data.load_snapshot(items, version)
        self.knowledge.reset(self.key_range, version)
        self._watch_handle = self.watchable.watch_range(
            self.key_range, version, self, config=self.config.watcher
        )
        self.state = "watching"
        if self._resync_started_at is not None:
            self.recovery_times.append(self.sim.now() - self._resync_started_at)
            self._resync_started_at = None

    def _snapshot_retry_delay(self) -> float:
        """Delay before re-attempting an unavailable snapshot.

        With no policy configured, the legacy fixed interval.  With one,
        its backoff schedule (deterministic jitter from the sim RNG);
        past ``max_attempts`` the delay stays clamped at the policy
        ceiling — a linked cache never abandons its sync."""
        policy = self.config.snapshot_retry
        if policy is None:
            return max(self.config.snapshot_latency, 0.01)
        return policy.backoff(self._snapshot_failures, self.sim.rng)

    # ------------------------------------------------------------------
    # WatchCallback

    def on_event(self, event: ChangeEvent) -> None:
        if self.state != "watching":
            return
        self._consecutive_resyncs = 0  # forward progress
        self.events_applied += 1
        if self.tracer is not None:
            self.tracer.record(
                hops.WATCH_APPLY, self.name,
                key=event.key, version=event.version, cache=self.name,
            )
        self.data.apply(event.key, event.mutation, event.version)

    def on_progress(self, event: ProgressEvent) -> None:
        if self.state != "watching":
            return
        self._consecutive_resyncs = 0  # forward progress
        self.progress_seen += 1
        self.knowledge.extend(event.key_range, event.version)
        if self.config.prune_window is not None:
            floor = self.knowledge.max_known_version() - self.config.prune_window
            if floor > 0:
                self.data.prune_below(floor)
                self.knowledge.prune_below(floor)

    def on_resync(self) -> None:
        if self.state == "stopped":
            return
        self.resync_count += 1
        self._consecutive_resyncs += 1
        self._watch_handle = None  # session already terminated itself
        self._begin_sync()

    # ------------------------------------------------------------------
    # reads

    @property
    def available(self) -> bool:
        """True when serving (not mid-resync)."""
        return self.state == "watching"

    def get_latest(self, key: Key) -> Optional[Any]:
        """Eventually-consistent read of the newest locally known value."""
        return self.data.get_latest(key)

    def read_at(self, key: Key, version: Version) -> Tuple[bool, Optional[Any]]:
        """Snapshot read of one key: (known?, value).

        ``known`` is False when the knowledge map cannot prove the local
        state complete for (key, version); the caller should go to the
        store (or another watcher) instead of serving a possibly-wrong
        answer.
        """
        if not self.knowledge.knows_key(key, version):
            return (False, None)
        return (True, self.data.get_at(key, version))

    def snapshot_read(
        self, key_range: KeyRange, version: Version
    ) -> Optional[Dict[Key, Any]]:
        """Snapshot read of a range at ``version``; None if not provably
        complete."""
        if not self.knowledge.knows(key_range, version):
            return None
        return self.data.items_at(key_range, version)

    def best_snapshot_version(self, key_range: Optional[KeyRange] = None) -> Optional[Version]:
        """Newest version at which a snapshot of ``key_range`` (default:
        the whole watched range) can be served."""
        return self.knowledge.best_snapshot_version(key_range or self.key_range)

    def items_at(self, key_range: KeyRange, version: Version) -> Dict[Key, Any]:
        """Raw local range read at a version (no knowledge check) — used
        by the stitcher after it has validated coverage itself."""
        return self.data.items_at(key_range, version)
