"""CDC publisher: pushes captured change records into a pubsub topic.

Messages are published with the row key as the pubsub key, so keyed
partitioning gives the per-key ordering that the §3.2.1
"partition-serial" replication strategy depends on.  The payload
carries the mutation and source version — everything a consumer could
want; the delivery problems downstream are pubsub's, not the data's.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.cdc.capture import CdcCapture, ChangeRecord
from repro.obs.trace import hops
from repro.pubsub.broker import Broker
from repro.sim.kernel import Simulation
from repro.storage.history import ChangeHistory

#: Publishes one record: (topic, key, payload).  Defaults to the direct
#: broker call; a networked pipeline passes RemotePublisher.publish so
#: the CDC→broker hop crosses the (lossy) simulated network instead.
PublishFn = Callable[[str, Optional[str], Any], Any]

#: Publishes one commit's record group: (topic, [(key, payload), ...]).
#: Defaults to ``broker.publish_batch``; a networked pipeline passes
#: ``RemotePublisher.publish_batch`` so the whole group rides one frame.
PublishBatchFn = Callable[[str, List[Tuple[Optional[str], Any]]], Any]


class CdcPublisher:
    """Wires a store history to a pubsub topic via CDC capture."""

    def __init__(
        self,
        sim: Simulation,
        history: ChangeHistory,
        broker: Optional[Broker],
        topic: str,
        publish_latency: float = 0.001,
        publish_fn: Optional[PublishFn] = None,
        tracer=None,
        group_commit: bool = False,
        publish_batch_fn: Optional[PublishBatchFn] = None,
        causal_index=None,
    ) -> None:
        if publish_latency < 0:
            raise ValueError("publish_latency must be >= 0")
        if broker is None and publish_fn is None and publish_batch_fn is None:
            raise ValueError("need a broker or an explicit publish_fn")
        if group_commit and broker is None and publish_batch_fn is None:
            raise ValueError("group_commit needs a broker or publish_batch_fn")
        self.sim = sim
        self.broker = broker
        self.topic = topic
        self.publish_latency = publish_latency
        self.tracer = tracer
        #: group-commit mode: buffer a transaction's records and publish
        #: them as ONE group (one latency, one frame) when the commit's
        #: last record arrives, instead of one publish per record
        self.group_commit = group_commit
        if publish_fn is not None:
            self._publish = publish_fn
        elif broker is not None:
            self._publish = broker.publish
        else:
            self._publish = None
        if publish_batch_fn is not None:
            self._publish_batch = publish_batch_fn
        elif broker is not None:
            self._publish_batch = broker.publish_batch
        else:
            self._publish_batch = None
        #: :class:`~repro.causal.stamp.StampIndex` (or None).  When set,
        #: each payload carries its ``CausalStamp`` under ``"causal"`` —
        #: the metadata rides the message onto the wire, so its byte
        #: cost shows up in ``net.bytes.*`` on networked pipelines.
        self.causal_index = causal_index
        self.published = 0
        self._txn_buffer: List[Tuple[Optional[str], Any, int]] = []
        self._capture = CdcCapture(history, self._on_record, tracer=tracer)

    def close(self) -> None:
        self._capture.close()

    def _on_record(self, record: ChangeRecord) -> None:
        payload = {
            "op": "delete" if record.is_delete else "put",
            "value": record.value,
            "version": record.txn_version,
            "txn_index": record.txn_index,
            "txn_size": record.txn_size,
        }
        if self.causal_index is not None:
            stamp = self.causal_index.lookup(record.key, record.txn_version)
            if stamp is not None:
                payload["causal"] = stamp
        self.published += 1
        if self.group_commit:
            # CdcCapture emits a commit's records synchronously in txn
            # order, so buffering until the last index regroups exactly
            # one transaction — never records of two interleaved commits
            self._txn_buffer.append((record.key, payload, record.txn_version))
            if record.txn_index == record.txn_size - 1:
                self._flush_txn()
            return

        def publish() -> None:
            if self.tracer is not None:
                self.tracer.record(
                    hops.CDC_PUBLISH, "cdc",
                    key=record.key, version=record.txn_version,
                    topic=self.topic,
                )
            self._publish(self.topic, record.key, payload)

        if self.publish_latency > 0:
            self.sim.call_after(self.publish_latency, publish)
        else:
            publish()

    def _flush_txn(self) -> None:
        buffered = self._txn_buffer
        self._txn_buffer = []
        records = [(key, payload) for key, payload, _ in buffered]

        def publish() -> None:
            if self.tracer is not None:
                for key, _payload, version in buffered:
                    self.tracer.record(
                        hops.CDC_PUBLISH, "cdc",
                        key=key, version=version,
                        topic=self.topic, n_events=len(buffered),
                    )
            self._publish_batch(self.topic, records)

        if self.publish_latency > 0:
            self.sim.call_after(self.publish_latency, publish)
        else:
            publish()
