"""CDC publisher: pushes captured change records into a pubsub topic.

Messages are published with the row key as the pubsub key, so keyed
partitioning gives the per-key ordering that the §3.2.1
"partition-serial" replication strategy depends on.  The payload
carries the mutation and source version — everything a consumer could
want; the delivery problems downstream are pubsub's, not the data's.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.cdc.capture import CdcCapture, ChangeRecord
from repro.obs.trace import hops
from repro.pubsub.broker import Broker
from repro.sim.kernel import Simulation
from repro.storage.history import ChangeHistory

#: Publishes one record: (topic, key, payload).  Defaults to the direct
#: broker call; a networked pipeline passes RemotePublisher.publish so
#: the CDC→broker hop crosses the (lossy) simulated network instead.
PublishFn = Callable[[str, Optional[str], Any], Any]


class CdcPublisher:
    """Wires a store history to a pubsub topic via CDC capture."""

    def __init__(
        self,
        sim: Simulation,
        history: ChangeHistory,
        broker: Optional[Broker],
        topic: str,
        publish_latency: float = 0.001,
        publish_fn: Optional[PublishFn] = None,
        tracer=None,
    ) -> None:
        if publish_latency < 0:
            raise ValueError("publish_latency must be >= 0")
        if broker is None and publish_fn is None:
            raise ValueError("need a broker or an explicit publish_fn")
        self.sim = sim
        self.broker = broker
        self.topic = topic
        self.publish_latency = publish_latency
        self.tracer = tracer
        if publish_fn is not None:
            self._publish = publish_fn
        else:
            assert broker is not None
            self._publish = broker.publish
        self.published = 0
        self._capture = CdcCapture(history, self._on_record, tracer=tracer)

    def close(self) -> None:
        self._capture.close()

    def _on_record(self, record: ChangeRecord) -> None:
        payload = {
            "op": "delete" if record.is_delete else "put",
            "value": record.value,
            "version": record.txn_version,
            "txn_index": record.txn_index,
            "txn_size": record.txn_size,
        }
        self.published += 1

        def publish() -> None:
            if self.tracer is not None:
                self.tracer.record(
                    hops.CDC_PUBLISH, "cdc",
                    key=record.key, version=record.txn_version,
                    topic=self.topic,
                )
            self._publish(self.topic, record.key, payload)

        if self.publish_latency > 0:
            self.sim.call_after(self.publish_latency, publish)
        else:
            publish()
