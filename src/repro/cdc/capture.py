"""CDC capture: turn a store's commit history into change records.

The capture tails :class:`~repro.storage.history.ChangeHistory` and
emits one :class:`ChangeRecord` per key write.  Records carry the
source transaction version — the information a careful consumer *could*
use for version checks (§3.2.1) — because real CDC systems (Debezium,
DynamoDB streams, Spanner change streams) do expose it.  What the
pubsub layer then does with ordering is the experiment's subject.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro._types import Key, Mutation, Version
from repro.obs.trace import hops
from repro.storage.history import ChangeHistory, CommittedTransaction


@dataclass(frozen=True)
class ChangeRecord:
    """One captured key change.

    ``txn_version`` is the source commit version; ``txn_size`` the
    number of writes in the originating transaction (consumers that
    want transactional apply need to regroup — pubsub does not preserve
    boundaries across partitions, §3.2.1).
    """

    key: Key
    mutation: Mutation
    txn_version: Version
    txn_index: int
    txn_size: int

    @property
    def is_delete(self) -> bool:
        return self.mutation.is_delete

    @property
    def value(self) -> Any:
        return self.mutation.value


RecordSink = Callable[[ChangeRecord], None]


class CdcCapture:
    """Tails a history, fanning each commit out as change records."""

    def __init__(
        self, history: ChangeHistory, sink: RecordSink, tracer=None
    ) -> None:
        self._sink = sink
        self.tracer = tracer
        self.records_emitted = 0
        self.commits_captured = 0
        self._cancel = history.tail(self._on_commit)

    def close(self) -> None:
        self._cancel()

    def _on_commit(self, commit: CommittedTransaction) -> None:
        self.commits_captured += 1
        size = len(commit.writes)
        for index, (key, mutation) in enumerate(commit.writes):
            self.records_emitted += 1
            if self.tracer is not None:
                self.tracer.record(
                    hops.CDC_CAPTURE, "cdc",
                    key=key, version=commit.version, txn_size=size,
                )
            self._sink(
                ChangeRecord(
                    key=key,
                    mutation=mutation,
                    txn_version=commit.version,
                    txn_index=index,
                    txn_size=size,
                )
            )


def replay_history(history: ChangeHistory, sink: RecordSink, since: Version = 0) -> int:
    """Replay retained history through ``sink``; returns records emitted.

    Raises :class:`~repro.storage.errors.HistoryTruncatedError` when the
    requested start has been truncated (callers snapshot instead).
    """
    emitted = 0
    for commit in history.since(since):
        size = len(commit.writes)
        for index, (key, mutation) in enumerate(commit.writes):
            sink(
                ChangeRecord(
                    key=key,
                    mutation=mutation,
                    txn_version=commit.version,
                    txn_index=index,
                    txn_size=size,
                )
            )
            emitted += 1
    return emitted
