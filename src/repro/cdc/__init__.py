"""Change data capture: producer store -> pubsub (the baseline wiring).

"In pubsub-based replication, a change data capture (CDC) system
publishes change events from producer storage, and consumers apply them
to a target store" (§3.2.1).  This package is that glue for the
*baseline* pipelines; the proposed model replaces it with the Ingester
bridges in :mod:`repro.core.bridge`.
"""

from repro.cdc.capture import CdcCapture, ChangeRecord
from repro.cdc.publisher import CdcPublisher

__all__ = ["CdcCapture", "ChangeRecord", "CdcPublisher"]
