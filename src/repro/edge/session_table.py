"""Slot-based session table: the edge tier's million-session backbone.

At E11 scale (~40 clients) per-object sessions with ordinary attribute
dicts are fine.  At E14 scale (100k-1M sessions) three per-session
costs dominate, and this module removes all of them:

- **Object memory.**  Sessions register here and get a dense integer
  *slot id* (``sid``).  All conservation counters live in parallel
  ``array('q')`` columns indexed by sid — eight machine words per
  session instead of eight boxed-int attribute entries — and the
  :class:`~repro.edge.session.ClientSession` objects themselves are
  ``__slots__``-only.  Slots are recycled through a LIFO freelist with
  a generation counter, so a run with heavy churn keeps the table at
  peak-concurrent size, not total-connects size.
- **Aggregate accounting.**  E14 must assert conservation
  (``offered == delivered + coalesced + dropped + returned + queued``)
  across half a million sessions; :meth:`totals` sums the columns in C
  instead of walking Python objects.
- **Drain scheduling.**  In the default (per-session) mode every ready
  session posts its own delivery event.  In *shared-drain* mode the
  table keeps an intrusive ready list — a linked list threaded through
  a ``sid -> next sid`` array — and one pump event per tick delivers
  one item for every ready session.  Cost per tick is O(active
  sessions with queued items and credits); idle sessions are never
  visited, enqueue/dequeue are O(1), and membership is one byte per
  slot.

The table also owns the per-session *trace sampling* decision (see
``repro.obs.trace.TraceSampler``): at 1M sessions, tracing every
delivery would dominate memory, so sessions whose sid is not sampled
run with ``tracer=None`` and skip every tracing branch entirely.

Determinism: the ready list is FIFO in kick order and the pump walks it
in that order, so shared-drain runs are exactly reproducible; the
default mode's event schedule is byte-identical to the pre-table
implementation (E11's determinism suite asserts this).
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, List, Optional

from repro.obs.trace import TraceSampler

_NO_SID = -1

# Ready-list link states (values in the ``_in_ready`` bytearray).  A
# slot released while still linked keeps its physical link (the list is
# singly linked; unlinking in ``release`` would be O(chain)) but is
# disarmed, and ``enqueue_ready`` re-arms it in place rather than
# linking it a second time — a second link would either self-cycle (when
# the slot is the stale tail) or truncate the chain behind it.
_UNLINKED = 0
_LINKED_ARMED = 1
_LINKED_STALE = 2


class SessionTable:
    """Dense slot table for :class:`~repro.edge.session.ClientSession`s."""

    __slots__ = (
        "sim", "drain_interval", "sampler",
        "_sessions", "_free", "generation",
        "offered", "delivered", "coalesced", "dropped", "returned",
        "snapshots", "peak_queue",
        "_ready_next", "_in_ready", "_ready_head", "_ready_tail",
        "_pump_scheduled", "active", "attaches", "pump_runs",
        "pump_visits",
    )

    def __init__(
        self,
        sim=None,
        drain_interval: Optional[float] = None,
        sampler: Optional[TraceSampler] = None,
    ) -> None:
        if drain_interval is not None:
            if sim is None:
                raise ValueError("shared drain needs the simulation")
            if drain_interval < 0:
                raise ValueError("drain_interval must be >= 0")
        self.sim = sim
        #: None -> per-session drain events (the default); a float ->
        #: shared-drain mode, one pump event per tick of this length
        self.drain_interval = drain_interval
        self.sampler = sampler or TraceSampler()
        self._sessions: List[Any] = []
        self._free: List[int] = []  # LIFO: hottest slot first
        #: bumped when a slot is released; detached sessions keep their
        #: (sid, generation) so stale handles are detectable
        self.generation = array("q")
        # conservation columns, indexed by sid
        self.offered = array("q")
        self.delivered = array("q")
        self.coalesced = array("q")
        self.dropped = array("q")
        self.returned = array("q")
        self.snapshots = array("q")
        self.peak_queue = array("q")
        # intrusive ready list (shared-drain mode)
        self._ready_next = array("q")
        self._in_ready = bytearray()
        self._ready_head = _NO_SID
        self._ready_tail = _NO_SID
        self._pump_scheduled = False
        self.active = 0
        self.attaches = 0
        self.pump_runs = 0
        self.pump_visits = 0

    # ------------------------------------------------------------------
    # slot lifecycle

    def attach(self, session) -> int:
        """Claim a slot for ``session``; returns its sid."""
        self.attaches += 1
        self.active += 1
        free = self._free
        if free:
            sid = free.pop()
            self._sessions[sid] = session
            self.offered[sid] = 0
            self.delivered[sid] = 0
            self.coalesced[sid] = 0
            self.dropped[sid] = 0
            self.returned[sid] = 0
            self.snapshots[sid] = 0
            self.peak_queue[sid] = 0
            return sid
        sid = len(self._sessions)
        self._sessions.append(session)
        self.generation.append(0)
        self.offered.append(0)
        self.delivered.append(0)
        self.coalesced.append(0)
        self.dropped.append(0)
        self.returned.append(0)
        self.snapshots.append(0)
        self.peak_queue.append(0)
        self._ready_next.append(_NO_SID)
        self._in_ready.append(0)
        return sid

    def release(self, sid: int) -> None:
        """Return a slot to the freelist (the session closed).

        A slot released while physically linked on the ready list stays
        linked (state 2, disarmed) until the pump walks past it — the
        list is singly linked, so unlinking here would cost O(chain).
        ``enqueue_ready`` knows never to re-link a still-linked slot,
        which is what makes close-then-immediate-reuse (a reconnect
        storm's hot path) safe.
        """
        self._sessions[sid] = None
        self.generation[sid] += 1
        if self._in_ready[sid]:
            self._in_ready[sid] = _LINKED_STALE
        self._free.append(sid)
        self.active -= 1

    def session(self, sid: int):
        """The session currently occupying ``sid`` (None if free)."""
        return self._sessions[sid]

    @property
    def capacity(self) -> int:
        """Slots ever allocated (peak concurrency under reuse)."""
        return len(self._sessions)

    def sampled(self, sid: int) -> bool:
        """Whether this slot's session should carry a tracer."""
        return self.sampler.keep(sid)

    # ------------------------------------------------------------------
    # shared drain: intrusive ready list + single pump event

    @property
    def shared_drain(self) -> bool:
        return self.drain_interval is not None

    def enqueue_ready(self, sid: int) -> None:
        """Link a session into the ready list (idempotent, O(1)).

        A sid still physically linked (armed, or stale from a released
        slot the pump has not walked past yet) is re-armed in place: the
        pending chain will reach it, and linking it again would corrupt
        the list.
        """
        if self._in_ready[sid]:
            self._in_ready[sid] = _LINKED_ARMED
            return
        self._in_ready[sid] = _LINKED_ARMED
        self._ready_next[sid] = _NO_SID
        if self._ready_tail == _NO_SID:
            self._ready_head = sid
        else:
            self._ready_next[self._ready_tail] = sid
        self._ready_tail = sid
        if not self._pump_scheduled:
            self._pump_scheduled = True
            self.sim.post(self.drain_interval, self._pump, label="edge:pump")

    def _pump(self) -> None:
        """Deliver one item for every ready session, in kick order.

        Sessions that stay ready (more queue, more credits) re-enqueue
        themselves onto the *next* tick's list via their ``_kick``; the
        first re-enqueue schedules that tick's pump.
        """
        self._pump_scheduled = False
        self.pump_runs += 1
        head = self._ready_head
        self._ready_head = _NO_SID
        self._ready_tail = _NO_SID
        ready_next = self._ready_next
        in_ready = self._in_ready
        sessions = self._sessions
        sid = head
        visits = 0
        while sid != _NO_SID:
            nxt = ready_next[sid]
            state = in_ready[sid]
            if state:
                in_ready[sid] = _UNLINKED
                if state == _LINKED_ARMED:
                    visits += 1
                    session = sessions[sid]
                    if session is not None:
                        session._deliver_next()
            sid = nxt
        self.pump_visits += visits

    # ------------------------------------------------------------------
    # aggregate accounting (C-speed column sums)

    def totals(self) -> Dict[str, int]:
        """Lifetime column sums over every slot (live and released).

        Released slots are zeroed at re-attach, not at release, so the
        sums include closed sessions that have not been recycled yet;
        callers that need exact lifetime totals across churn should
        fold per-session counters at close time (EdgeClient does).
        """
        return {
            "offered": sum(self.offered),
            "delivered": sum(self.delivered),
            "coalesced": sum(self.coalesced),
            "dropped": sum(self.dropped),
            "returned": sum(self.returned),
            "snapshots": sum(self.snapshots),
        }
