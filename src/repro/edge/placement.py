"""Session placement: which frontend owns which client.

Placement reuses :class:`~repro.sharding.autosharder.AutoSharder` over
the *client-name* keyspace: each frontend owns a contiguous slice of
client names, clients route themselves via :meth:`frontend_for`, and
removing a failed frontend reassigns its slice so its clients reconnect
elsewhere.  Rebalances propagate to frontends with the sharder's
listener latency — sessions living on a frontend that just lost their
slice are closed ("rebalanced") and their clients re-route, the same
eventually-consistent handoff the sharding layer models for caches
(Figure 2): for a notify-latency window, a client can still be routed
to the old owner.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro._types import Key
from repro.sharding.assignment import Assignment
from repro.sharding.autosharder import AutoSharder, AutoSharderConfig
from repro.sim.kernel import Simulation
from repro.sim.metrics import MetricsRegistry


class SessionPlacement:
    """Maps clients to frontends through a sharder assignment."""

    def __init__(
        self,
        sim: Simulation,
        frontends: Iterable,  # frontends with .name/.up/.sessions
        config: Optional[AutoSharderConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sim = sim
        self._frontends = {frontend.name: frontend for frontend in frontends}
        if not self._frontends:
            raise ValueError("need at least one frontend")
        self.sharder = AutoSharder(
            sim,
            sorted(self._frontends),
            config or AutoSharderConfig(notify_latency=0.01, notify_jitter=0.0),
            metrics=metrics,
            auto_rebalance=False,
        )
        self.evictions = 0
        self.sharder.subscribe(self._on_assignment, immediate=False)

    # ------------------------------------------------------------------
    # routing (clients call this)

    def frontend_for(self, client_name: Key):
        """The frontend currently assigned ``client_name``.

        Reads the sharder's authoritative assignment — the routing tier
        is assumed fresh; it is the *frontends* that learn of moves with
        latency (and evict stale sessions when they do).
        """
        return self._frontends[self.sharder.assignment.owner_of(client_name)]

    def frontends(self) -> Dict[str, object]:
        return dict(self._frontends)

    def census(self) -> Dict[str, int]:
        """Live session count per frontend (E14's balance check)."""
        return {
            name: frontend.active_sessions
            for name, frontend in sorted(self._frontends.items())
        }

    # ------------------------------------------------------------------
    # membership

    def remove_frontend(self, name: str) -> None:
        """Take a failed/drained frontend out of rotation; its slice is
        reassigned and its clients reconnect to the new owners."""
        self.sharder.remove_node(name)

    def add_frontend(self, frontend) -> None:
        self._frontends[frontend.name] = frontend
        self.sharder.add_node(frontend.name)

    # ------------------------------------------------------------------
    # assignment propagation (sharder listener, arrives with latency)

    def _on_assignment(self, assignment: Assignment) -> None:
        for frontend in self._frontends.values():
            if not frontend.up:
                continue  # crash already dropped its sessions
            for client_name, session in list(frontend.sessions.items()):
                if assignment.owner_of(client_name) != frontend.name:
                    self.evictions += 1
                    session.close("rebalanced")
