"""Client sessions: credit-based flow control and slow-consumer policy.

A :class:`ClientSession` is the edge tier's unit of delivery — one
connected client on one frontend.  The frontend offers updates into the
session's bounded queue; the client grants *credits* as it finishes
processing, and the session delivers at most one queued item per credit.
A slow client therefore backs up its own session queue, never the
frontend's source feed — and what happens when that queue fills is the
session's **slow-consumer policy**, the knob the paper says separates
watch from pubsub delivery (§4.4, §3.2):

- ``coalesce`` — keep only the latest value per key.  Superseded
  updates are counted (and traced as ``edge.coalesce``) rather than
  delivered; the client converges to the same final state with a
  bounded queue (at most one entry per distinct key).  Watch-only by
  construction: pubsub contracts promise every message.
- ``bounded-buffer-drop`` — shed the oldest queued update, tracing
  ``edge.drop`` so loss provenance can attribute it ("dropped at
  edge").  This is the pubsub reality the paper criticizes: the client
  silently misses intermediate (and possibly final) values.
- ``disconnect`` — close the session on overflow; the client's durable
  cursor makes reconnect catch-up re-serve everything still queued.

Every offered update ends in exactly one bucket — delivered, coalesced,
dropped, returned-to-cursor (queued at close, re-servable via the
cursor), or still queued — so ``attributed == offered`` is an invariant
E11 asserts as its 100%-attribution acceptance bar.

Scale notes (E14, 100k-1M sessions; see ``docs/scale.md``): sessions
are ``__slots__``-only, conservation counters live in the shared
:class:`~repro.edge.session_table.SessionTable` columns indexed by the
session's slot id (read back here through properties), the queue is a
plain list with a head offset (an empty ``deque`` alone costs ~0.6KB),
and the coalesce cell map is allocated only under the COALESCE policy.
A closed session snapshots its counters into ``_final`` before
returning its slot, so post-close reads (EdgeClient folds counters at
close) still see them after the slot is recycled.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Dict, List, Optional

from repro._types import Key, KeyRange, Version
from repro.edge.session_table import SessionTable
from repro.obs.trace import hops
from repro.sim.kernel import Simulation


class SlowConsumerPolicy(str, Enum):
    """What a session does when its bounded queue is full."""

    COALESCE = "coalesce"
    DROP = "bounded-buffer-drop"
    DISCONNECT = "disconnect"


@dataclass
class SessionConfig:
    """Per-session delivery parameters."""

    policy: SlowConsumerPolicy = SlowConsumerPolicy.COALESCE
    #: Queue bound the slow-consumer policy enforces.
    max_queue: int = 256
    #: Credits granted at connect; the client returns one per item it
    #: finishes processing, so at most this many deliveries are in
    #: flight at the client at once.
    initial_credits: int = 32
    #: Frontend -> client delivery latency per item.
    delivery_latency: float = 0.001
    #: COALESCE only: set False to queue every update instead of
    #: superseding queued entries per key.  Supersession is a *reorder*:
    #: the newer value takes the queue position of the update it
    #: replaced, jumping ahead of everything offered in between —
    #: including its own causal dependencies.  Causal-mode frontends
    #: therefore disable it (order fidelity over the per-key queue
    #: bound); see docs/causal.md.
    coalesce: bool = True

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.initial_credits < 1:
            raise ValueError("initial_credits must be >= 1")
        if self.delivery_latency < 0:
            raise ValueError("delivery_latency must be >= 0")


class Update:
    """One update offered to a session, from either pipeline.

    Watch updates carry the MVCC commit version; pubsub updates also
    carry their partition/offset so the client can advance its offset
    cursor.

    A ``__slots__`` value object rather than a frozen dataclass: the
    edge hot path builds one per fanned-out event, and the frozen
    dataclass's ``object.__setattr__``-per-field construction dominated
    the offer path at E14 scale.  Field set, construction signature,
    equality, and repr match the previous dataclass exactly.
    """

    __slots__ = ("key", "version", "value", "is_delete", "partition", "offset")

    def __init__(
        self,
        key: Key,
        version: Version,
        value: Any = None,
        is_delete: bool = False,
        partition: Optional[int] = None,
        offset: Optional[int] = None,
    ) -> None:
        self.key = key
        self.version = version
        self.value = value
        self.is_delete = is_delete
        self.partition = partition
        self.offset = offset

    def _astuple(self):
        return (
            self.key, self.version, self.value,
            self.is_delete, self.partition, self.offset,
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Update:
            return NotImplemented
        return self._astuple() == other._astuple()  # type: ignore[union-attr]

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"Update(key={self.key!r}, version={self.version!r}, "
            f"value={self.value!r}, is_delete={self.is_delete!r}, "
            f"partition={self.partition!r}, offset={self.offset!r})"
        )


@dataclass(frozen=True)
class SnapshotDelivery:
    """A full re-serve of the session's range at one version."""

    version: Version
    items: Dict[Key, Any]


#: _final snapshot indices (set at close; see ClientSession.close)
_F_OFFERED, _F_DELIVERED, _F_COALESCED, _F_DROPPED = range(4)
_F_RETURNED, _F_SNAPSHOTS, _F_PEAK = 4, 5, 6

#: compact the queue's consumed head once it is this long and at least
#: half the list (amortized O(1), bounds idle memory after bursts)
_QHEAD_COMPACT = 512


class ClientSession:
    """One connected client on one frontend: queue, credits, policy."""

    __slots__ = (
        "sim", "name", "client", "key_range", "config", "tracer",
        "table", "sid", "_shared", "_on_closed", "_policy", "_max_queue",
        "_delivery_latency", "_queue", "_qhead", "_cells", "credits",
        "_draining", "_active", "close_reason", "staleness_at_connect",
        "live", "expected_offsets", "_feed_handle", "_deliver_cb",
        "_final",
    )

    def __init__(
        self,
        sim: Simulation,
        name: str,
        client,  # anything with on_delivery(session, item) / on_session_closed
        key_range: KeyRange,
        config: Optional[SessionConfig] = None,
        on_closed: Optional[Callable[["ClientSession", str], None]] = None,
        tracer=None,
        table: Optional[SessionTable] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.client = client
        self.key_range = key_range
        self.config = config or SessionConfig()
        self.tracer = tracer
        #: standalone sessions get a private table; frontends share one
        self.table = table if table is not None else SessionTable()
        self.sid = self.table.attach(self)
        self._shared = self.table.shared_drain
        self._on_closed = on_closed
        self._policy = self.config.policy
        self._max_queue = self.config.max_queue
        self._delivery_latency = self.config.delivery_latency
        #: queue entries are single-slot cells ``[Update]`` (so coalesce
        #: can swap in a newer value in place) or SnapshotDelivery;
        #: consumed entries are None'd behind ``_qhead``
        self._queue: List[object] = []
        self._qhead = 0
        #: COALESCE only: pending cell per key (None otherwise, or when
        #: the config disables supersession for causal order fidelity)
        self._cells: Optional[Dict[Key, List[Update]]] = (
            {}
            if self._policy is SlowConsumerPolicy.COALESCE
            and self.config.coalesce
            else None
        )
        self.credits = self.config.initial_credits
        self._draining = False
        self._active = True
        self.close_reason: Optional[str] = None
        #: sampled by the frontend at connect (versions or messages behind)
        self.staleness_at_connect = 0
        # frontend-managed delivery state (pubsub catch-up)
        self.live = True
        self.expected_offsets: Dict[int, int] = {}
        self._feed_handle = None
        #: pre-bound so the hot drain path posts without allocating a
        #: bound method per event
        self._deliver_cb = self._deliver_next
        #: counters snapshot taken at close, before the slot is recycled
        self._final: Optional[tuple] = None

    # ------------------------------------------------------------------
    # producer side (frontends call these)

    def offer(self, update: Update) -> None:
        """Enqueue one update, applying the slow-consumer policy."""
        if not self._active:
            return
        if self._offer_inner(update):
            self._kick()

    def offer_batch(self, updates: List[Update]) -> None:
        """Enqueue a frame of updates with ONE delivery kick.

        Per-update policy handling and conservation accounting are
        identical to N :meth:`offer` calls; only the drain scheduling
        is shared, so a frame costs one kernel event instead of one
        per update.
        """
        kick = False
        inner = self._offer_inner
        for update in updates:
            if not self._active:
                return
            if inner(update):
                kick = True
        if kick:
            self._kick()

    def _offer_inner(self, update: Update) -> bool:
        """Apply policy and queue one update; True if a kick is due."""
        table = self.table
        sid = self.sid
        table.offered[sid] += 1
        queue = self._queue
        cells = self._cells
        if cells is not None:
            cell = cells.get(update.key)
            if cell is not None:
                superseded = cell[0]
                cell[0] = update
                table.coalesced[sid] += 1
                if self.tracer is not None:
                    self.tracer.record(
                        hops.EDGE_COALESCE, self.name,
                        key=superseded.key, version=superseded.version,
                        session=self.name, superseded_by=update.version,
                    )
                return False
        if len(queue) - self._qhead >= self._max_queue:
            if self._policy is SlowConsumerPolicy.DISCONNECT:
                # the triggering update was never queued; the client's
                # cursor has not passed it, so reconnect re-serves it
                table.returned[sid] += 1
                self.close("slow-consumer")
                return False
            self._drop_oldest()
        cell = [update]
        queue.append(cell)
        if cells is not None:
            cells[update.key] = cell
        depth = len(queue) - self._qhead
        if depth > table.peak_queue[sid]:
            table.peak_queue[sid] = depth
        return True

    def offer_snapshot(self, version: Version, items: Dict[Key, Any]) -> None:
        """Enqueue a full re-serve (not subject to the queue bound)."""
        if not self._active:
            return
        queue = self._queue
        queue.append(SnapshotDelivery(version, dict(items)))
        table = self.table
        depth = len(queue) - self._qhead
        if depth > table.peak_queue[self.sid]:
            table.peak_queue[self.sid] = depth
        self._kick()

    def _drop_oldest(self) -> None:
        # oldest *update* — a queued snapshot (only ever near the head)
        # is never shed, or the client's state would silently diverge
        queue = self._queue
        cells = self._cells
        for idx in range(self._qhead, len(queue)):
            item = queue[idx]
            if item.__class__ is SnapshotDelivery:
                continue
            victim = item[0]
            del queue[idx]
            if cells is not None and cells.get(victim.key) is item:
                del cells[victim.key]
            self.table.dropped[self.sid] += 1
            if self.tracer is not None:
                self.tracer.record(
                    hops.EDGE_DROP, self.name,
                    key=victim.key, version=victim.version,
                    session=self.name, policy=self._policy.value,
                )
            return

    # ------------------------------------------------------------------
    # consumer side (the client grants credits)

    def grant(self, credits: int = 1) -> None:
        """Return ``credits`` flow-control credits to the session."""
        if not self._active:
            return
        self.credits += credits
        self._kick()

    def _kick(self) -> None:
        if (
            self._active
            and self.credits > 0
            and len(self._queue) > self._qhead
        ):
            if self._shared:
                # O(active) shared drain: join the table's ready list;
                # the pump delivers one item per ready session per tick
                self.table.enqueue_ready(self.sid)
            elif not self._draining:
                self._draining = True
                self.sim.post(self._delivery_latency, self._deliver_cb)

    def _deliver_next(self) -> None:
        self._draining = False
        queue = self._queue
        head = self._qhead
        if not self._active or self.credits <= 0 or len(queue) <= head:
            return
        item = queue[head]
        queue[head] = None
        head += 1
        if head >= _QHEAD_COMPACT and head * 2 >= len(queue):
            del queue[:head]
            head = 0
        self._qhead = head
        self.credits -= 1
        table = self.table
        sid = self.sid
        if item.__class__ is SnapshotDelivery:
            table.snapshots[sid] += 1
            self.client.on_delivery(self, item)
        else:
            update = item[0]
            cells = self._cells
            if cells is not None and cells.get(update.key) is item:
                del cells[update.key]
            table.delivered[sid] += 1
            if self.tracer is not None:
                self.tracer.record(
                    hops.EDGE_DELIVER, self.name,
                    key=update.key, version=update.version, session=self.name,
                )
            self.client.on_delivery(self, update)
        self._kick()

    # ------------------------------------------------------------------
    # lifecycle

    @property
    def active(self) -> bool:
        return self._active

    def close(self, reason: str = "closed") -> None:
        """End the session; queued updates return to the cursor.

        The client's durable cursor has only advanced past *delivered*
        items, so everything still queued will be re-served by reconnect
        catch-up — closed sessions lose nothing.  Counters are
        snapshotted into ``_final`` and the table slot is released
        before the close callbacks run, so callbacks (EdgeClient folds
        totals here) read stable values even if the slot is reused by a
        reconnect inside the callback.
        """
        if not self._active:
            return
        self._active = False
        self.close_reason = reason
        returned = self.queued_updates
        table = self.table
        sid = self.sid
        table.returned[sid] += returned
        self._final = (
            table.offered[sid], table.delivered[sid], table.coalesced[sid],
            table.dropped[sid], table.returned[sid], table.snapshots[sid],
            table.peak_queue[sid],
        )
        table.release(sid)
        self._queue.clear()
        self._qhead = 0
        if self._cells is not None:
            self._cells.clear()
        if self.tracer is not None:
            self.tracer.record(
                hops.EDGE_DISCONNECT, self.name,
                session=self.name, reason=reason, returned=returned,
            )
        if self._on_closed is not None:
            self._on_closed(self, reason)  # frontend bookkeeping first
        self.client.on_session_closed(self, reason)

    # ------------------------------------------------------------------
    # accounting (live sessions read table columns; closed read _final)

    @property
    def offered(self) -> int:
        f = self._final
        return f[_F_OFFERED] if f is not None else self.table.offered[self.sid]

    @property
    def delivered(self) -> int:
        f = self._final
        return f[_F_DELIVERED] if f is not None else self.table.delivered[self.sid]

    @property
    def coalesced(self) -> int:
        f = self._final
        return f[_F_COALESCED] if f is not None else self.table.coalesced[self.sid]

    @property
    def dropped(self) -> int:
        f = self._final
        return f[_F_DROPPED] if f is not None else self.table.dropped[self.sid]

    @property
    def returned_to_cursor(self) -> int:
        f = self._final
        return f[_F_RETURNED] if f is not None else self.table.returned[self.sid]

    @property
    def snapshots_delivered(self) -> int:
        f = self._final
        return f[_F_SNAPSHOTS] if f is not None else self.table.snapshots[self.sid]

    @property
    def peak_queue(self) -> int:
        f = self._final
        return f[_F_PEAK] if f is not None else self.table.peak_queue[self.sid]

    @property
    def queued_updates(self) -> int:
        """Updates queued but not yet delivered (snapshots excluded)."""
        queue = self._queue
        return sum(
            1 for i in range(self._qhead, len(queue))
            if queue[i].__class__ is not SnapshotDelivery
        )

    @property
    def backlog(self) -> int:
        return len(self._queue) - self._qhead

    @property
    def attributed(self) -> int:
        """Updates accounted for by some outcome bucket.

        Conservation invariant: equals :attr:`offered` at all times —
        the basis of E11's 100%-attribution acceptance bar.
        """
        return (
            self.delivered
            + self.coalesced
            + self.dropped
            + self.returned_to_cursor
            + self.queued_updates
        )
