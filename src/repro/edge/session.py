"""Client sessions: credit-based flow control and slow-consumer policy.

A :class:`ClientSession` is the edge tier's unit of delivery — one
connected client on one frontend.  The frontend offers updates into the
session's bounded queue; the client grants *credits* as it finishes
processing, and the session delivers at most one queued item per credit.
A slow client therefore backs up its own session queue, never the
frontend's source feed — and what happens when that queue fills is the
session's **slow-consumer policy**, the knob the paper says separates
watch from pubsub delivery (§4.4, §3.2):

- ``coalesce`` — keep only the latest value per key.  Superseded
  updates are counted (and traced as ``edge.coalesce``) rather than
  delivered; the client converges to the same final state with a
  bounded queue (at most one entry per distinct key).  Watch-only by
  construction: pubsub contracts promise every message.
- ``bounded-buffer-drop`` — shed the oldest queued update, tracing
  ``edge.drop`` so loss provenance can attribute it ("dropped at
  edge").  This is the pubsub reality the paper criticizes: the client
  silently misses intermediate (and possibly final) values.
- ``disconnect`` — close the session on overflow; the client's durable
  cursor makes reconnect catch-up re-serve everything still queued.

Every offered update ends in exactly one bucket — delivered, coalesced,
dropped, returned-to-cursor (queued at close, re-servable via the
cursor), or still queued — so ``attributed == offered`` is an invariant
E11 asserts as its 100%-attribution acceptance bar.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Deque, Dict, List, Optional

from repro._types import Key, KeyRange, Version
from repro.obs.trace import hops
from repro.sim.kernel import Simulation


class SlowConsumerPolicy(str, Enum):
    """What a session does when its bounded queue is full."""

    COALESCE = "coalesce"
    DROP = "bounded-buffer-drop"
    DISCONNECT = "disconnect"


@dataclass
class SessionConfig:
    """Per-session delivery parameters."""

    policy: SlowConsumerPolicy = SlowConsumerPolicy.COALESCE
    #: Queue bound the slow-consumer policy enforces.
    max_queue: int = 256
    #: Credits granted at connect; the client returns one per item it
    #: finishes processing, so at most this many deliveries are in
    #: flight at the client at once.
    initial_credits: int = 32
    #: Frontend -> client delivery latency per item.
    delivery_latency: float = 0.001

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.initial_credits < 1:
            raise ValueError("initial_credits must be >= 1")
        if self.delivery_latency < 0:
            raise ValueError("delivery_latency must be >= 0")


@dataclass(frozen=True)
class Update:
    """One update offered to a session, from either pipeline.

    Watch updates carry the MVCC commit version; pubsub updates also
    carry their partition/offset so the client can advance its offset
    cursor.
    """

    key: Key
    version: Version
    value: Any = None
    is_delete: bool = False
    partition: Optional[int] = None
    offset: Optional[int] = None


@dataclass(frozen=True)
class SnapshotDelivery:
    """A full re-serve of the session's range at one version."""

    version: Version
    items: Dict[Key, Any]


class ClientSession:
    """One connected client on one frontend: queue, credits, policy."""

    def __init__(
        self,
        sim: Simulation,
        name: str,
        client,  # anything with on_delivery(session, item) / on_session_closed
        key_range: KeyRange,
        config: Optional[SessionConfig] = None,
        on_closed: Optional[Callable[["ClientSession", str], None]] = None,
        tracer=None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.client = client
        self.key_range = key_range
        self.config = config or SessionConfig()
        self.tracer = tracer
        self._on_closed = on_closed
        self._policy = self.config.policy
        self._max_queue = self.config.max_queue
        self._delivery_latency = self.config.delivery_latency
        #: queue entries are single-slot cells ``[Update]`` (so coalesce
        #: can swap in a newer value in place) or SnapshotDelivery
        self._queue: Deque[object] = deque()
        #: COALESCE only: pending cell per key
        self._cells: Dict[Key, List[Update]] = {}
        self.credits = self.config.initial_credits
        self._draining = False
        self._active = True
        self.close_reason: Optional[str] = None
        #: sampled by the frontend at connect (versions or messages behind)
        self.staleness_at_connect = 0
        # frontend-managed delivery state (pubsub catch-up)
        self.live = True
        self.expected_offsets: Dict[int, int] = {}
        self._feed_handle = None
        # conservation accounting: every offered update lands in exactly
        # one of delivered / coalesced / dropped / returned_to_cursor /
        # still-queued
        self.offered = 0
        self.delivered = 0
        self.coalesced = 0
        self.dropped = 0
        self.returned_to_cursor = 0
        self.snapshots_delivered = 0
        self.peak_queue = 0

    # ------------------------------------------------------------------
    # producer side (frontends call these)

    def offer(self, update: Update) -> None:
        """Enqueue one update, applying the slow-consumer policy."""
        if not self._active:
            return
        if self._offer_inner(update):
            self._kick()

    def offer_batch(self, updates: List[Update]) -> None:
        """Enqueue a frame of updates with ONE delivery kick.

        Per-update policy handling and conservation accounting are
        identical to N :meth:`offer` calls; only the drain scheduling
        is shared, so a frame costs one kernel event instead of one
        per update.
        """
        kick = False
        for update in updates:
            if not self._active:
                return
            if self._offer_inner(update):
                kick = True
        if kick:
            self._kick()

    def _offer_inner(self, update: Update) -> bool:
        """Apply policy and queue one update; True if a kick is due."""
        self.offered += 1
        queue = self._queue
        if self._policy is SlowConsumerPolicy.COALESCE:
            cell = self._cells.get(update.key)
            if cell is not None:
                superseded = cell[0]
                cell[0] = update
                self.coalesced += 1
                if self.tracer is not None:
                    self.tracer.record(
                        hops.EDGE_COALESCE, self.name,
                        key=superseded.key, version=superseded.version,
                        session=self.name, superseded_by=update.version,
                    )
                return False
        if len(queue) >= self._max_queue:
            if self._policy is SlowConsumerPolicy.DISCONNECT:
                # the triggering update was never queued; the client's
                # cursor has not passed it, so reconnect re-serves it
                self.returned_to_cursor += 1
                self.close("slow-consumer")
                return False
            self._drop_oldest()
        cell = [update]
        queue.append(cell)
        if self._policy is SlowConsumerPolicy.COALESCE:
            self._cells[update.key] = cell
        if len(queue) > self.peak_queue:
            self.peak_queue = len(queue)
        return True

    def offer_snapshot(self, version: Version, items: Dict[Key, Any]) -> None:
        """Enqueue a full re-serve (not subject to the queue bound)."""
        if not self._active:
            return
        self._queue.append(SnapshotDelivery(version, dict(items)))
        if len(self._queue) > self.peak_queue:
            self.peak_queue = len(self._queue)
        self._kick()

    def _drop_oldest(self) -> None:
        # oldest *update* — a queued snapshot (only ever near the head)
        # is never shed, or the client's state would silently diverge
        queue = self._queue
        for idx, item in enumerate(queue):
            if item.__class__ is SnapshotDelivery:
                continue
            victim = item[0]
            del queue[idx]
            if self._cells.get(victim.key) is item:
                del self._cells[victim.key]
            self.dropped += 1
            if self.tracer is not None:
                self.tracer.record(
                    hops.EDGE_DROP, self.name,
                    key=victim.key, version=victim.version,
                    session=self.name, policy=self._policy.value,
                )
            return

    # ------------------------------------------------------------------
    # consumer side (the client grants credits)

    def grant(self, credits: int = 1) -> None:
        """Return ``credits`` flow-control credits to the session."""
        if not self._active:
            return
        self.credits += credits
        self._kick()

    def _kick(self) -> None:
        if (
            self._active
            and not self._draining
            and self.credits > 0
            and self._queue
        ):
            self._draining = True
            self.sim.post(self._delivery_latency, self._deliver_next)

    def _deliver_next(self) -> None:
        self._draining = False
        if not self._active or self.credits <= 0 or not self._queue:
            return
        item = self._queue.popleft()
        self.credits -= 1
        if item.__class__ is SnapshotDelivery:
            self.snapshots_delivered += 1
            self.client.on_delivery(self, item)
        else:
            update = item[0]
            if self._cells.get(update.key) is item:
                del self._cells[update.key]
            self.delivered += 1
            if self.tracer is not None:
                self.tracer.record(
                    hops.EDGE_DELIVER, self.name,
                    key=update.key, version=update.version, session=self.name,
                )
            self.client.on_delivery(self, update)
        self._kick()

    # ------------------------------------------------------------------
    # lifecycle

    @property
    def active(self) -> bool:
        return self._active

    def close(self, reason: str = "closed") -> None:
        """End the session; queued updates return to the cursor.

        The client's durable cursor has only advanced past *delivered*
        items, so everything still queued will be re-served by reconnect
        catch-up — closed sessions lose nothing.
        """
        if not self._active:
            return
        self._active = False
        self.close_reason = reason
        returned = self.queued_updates
        self.returned_to_cursor += returned
        self._queue.clear()
        self._cells.clear()
        if self.tracer is not None:
            self.tracer.record(
                hops.EDGE_DISCONNECT, self.name,
                session=self.name, reason=reason, returned=returned,
            )
        if self._on_closed is not None:
            self._on_closed(self, reason)  # frontend bookkeeping first
        self.client.on_session_closed(self, reason)

    # ------------------------------------------------------------------
    # accounting

    @property
    def queued_updates(self) -> int:
        """Updates queued but not yet delivered (snapshots excluded)."""
        queue = self._queue
        return sum(1 for item in queue if item.__class__ is not SnapshotDelivery)

    @property
    def backlog(self) -> int:
        return len(self._queue)

    @property
    def attributed(self) -> int:
        """Updates accounted for by some outcome bucket.

        Conservation invariant: equals :attr:`offered` at all times —
        the basis of E11's 100%-attribution acceptance bar.
        """
        return (
            self.delivered
            + self.coalesced
            + self.dropped
            + self.returned_to_cursor
            + self.queued_updates
        )
