"""Edge clients: durable cursors, local state, and reconnect behaviour.

An :class:`EdgeClient` models one end-user connection's lifetime across
many sessions.  It owns the two durable cursors the tentpole calls for
— the last-applied MVCC version (watch) and per-partition offsets
(pubsub) — plus a local materialized map, so staleness and convergence
can be measured against the source store.  Consumption speed is modeled
by ``service_time``: the client returns one flow-control credit per
item, ``service_time`` after applying it, so a slow client throttles
its session to ``initial_credits / service_time`` items per second.

Reconnection is the client's job: on session close (slow-consumer
disconnect, frontend failure, placement rebalance, or a voluntary drop
during a storm) it asks the placement map for its current frontend
after ``reconnect_delay`` and connects there — retrying while the
assigned frontend is down.  Counter totals survive across sessions so
experiments can account every offered update per client.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro._types import Key, KeyRange, Version, VERSION_ZERO
from repro.edge.session import ClientSession, SnapshotDelivery, Update
from repro.sim.kernel import Simulation

#: counter names folded from sessions into the client's lifetime totals
_TOTAL_KEYS = (
    "offered", "delivered", "coalesced", "dropped", "returned", "queued",
)


class EdgeClient:
    """One client identity: cursors, state, and reconnect policy.

    ``__slots__``-only: at E14 scale there is one of these per session
    chain, and the instance dict would roughly double the per-client
    footprint.
    """

    __slots__ = (
        "sim", "name", "placement", "key_range", "service_time",
        "reconnect_delay", "auto_reconnect", "stopped", "cursor",
        "offsets", "state", "session", "connects", "rejected_connects",
        "disconnects", "updates_applied", "snapshots_applied",
        "resyncs_forced", "close_reasons", "staleness_at_connect",
        "peak_queue", "totals",
    )

    def __init__(
        self,
        sim: Simulation,
        name: str,
        placement,  # SessionPlacement (anything with frontend_for)
        key_range: Optional[KeyRange] = None,
        service_time: float = 0.0,
        reconnect_delay: float = 0.5,
    ) -> None:
        self.sim = sim
        self.name = name
        self.placement = placement
        self.key_range = key_range or KeyRange.all()
        self.service_time = service_time
        self.reconnect_delay = reconnect_delay
        self.auto_reconnect = True
        self.stopped = False
        #: durable cursors: highest applied commit version (watch) and
        #: next-expected offset per partition (pubsub)
        self.cursor: Version = VERSION_ZERO
        self.offsets: Dict[int, int] = {}
        #: locally materialized state of ``key_range``
        self.state: Dict[Key, Any] = {}
        self.session: Optional[ClientSession] = None
        self.connects = 0
        self.rejected_connects = 0
        self.disconnects = 0
        self.updates_applied = 0
        self.snapshots_applied = 0
        self.resyncs_forced = 0
        #: why each session ended, in order (storm accounting reads this)
        self.close_reasons: List[str] = []
        #: how far behind (frontend head - cursor) each connect found us
        self.staleness_at_connect: List[int] = []
        #: deepest session queue ever observed for this client
        self.peak_queue = 0
        self.totals: Dict[str, int] = {key: 0 for key in _TOTAL_KEYS}

    # ------------------------------------------------------------------
    # connection lifecycle

    def connect(self) -> None:
        """Connect to the placement-assigned frontend (retry if down)."""
        if self.stopped or self.session is not None:
            return
        frontend = self.placement.frontend_for(self.name)
        if not frontend.up:
            # the control plane has not rerouted us yet; try again later
            self.rejected_connects += 1
            self.sim.call_after(self.reconnect_delay, self.connect)
            return
        self.connects += 1
        self.session = frontend.connect(self)

    def disconnect(self) -> None:
        """Voluntarily drop the session (storm injection uses this)."""
        if self.session is not None:
            self.session.close("client-disconnect")

    def on_session_closed(self, session: ClientSession, reason: str) -> None:
        if session is not self.session:
            return
        self.session = None
        self.disconnects += 1
        self.close_reasons.append(reason)
        self._absorb(session)
        if self.auto_reconnect and not self.stopped:
            self.sim.call_after(self.reconnect_delay, self.connect)

    def stop(self) -> None:
        """Stop reconnecting (end-of-run teardown)."""
        self.stopped = True

    def force_resync(self) -> None:
        """Repair path: discard the durable cursors and local state so
        the next session starts from scratch (snapshot or full replay).

        The edge reconciler calls this when the reconnect cursor is
        provably corrupt (ahead of the source head): a forged cursor
        makes every delta catch-up silently skip the gap, so the only
        safe repair is to throw the cursor away."""
        self.cursor = VERSION_ZERO
        self.offsets = {}
        self.state = {}
        self.resyncs_forced += 1
        if self.session is not None:
            self.session.close("resync")
        elif self.auto_reconnect and not self.stopped:
            self.sim.call_after(self.reconnect_delay, self.connect)

    # ------------------------------------------------------------------
    # delivery (sessions call this)

    def on_delivery(self, session: ClientSession, item) -> None:
        if item.__class__ is SnapshotDelivery:
            # wholesale replacement of the watched range at one version
            self.state = dict(item.items)
            if item.version > self.cursor:
                self.cursor = item.version
            self.snapshots_applied += 1
        else:
            self._apply(item)
        if self.service_time > 0:
            self.sim.call_after(self.service_time, session.grant)
        else:
            session.grant()

    def _apply(self, update: Update) -> None:
        if update.is_delete:
            self.state.pop(update.key, None)
        else:
            self.state[update.key] = update.value
        if update.version > self.cursor:
            self.cursor = update.version
        if update.partition is not None:
            nxt = update.offset + 1
            if nxt > self.offsets.get(update.partition, 0):
                self.offsets[update.partition] = nxt
        self.updates_applied += 1

    # ------------------------------------------------------------------
    # accounting

    def _absorb(self, session: ClientSession, live: bool = False) -> None:
        if session.peak_queue > self.peak_queue:
            self.peak_queue = session.peak_queue
        totals = self.totals
        totals["offered"] += session.offered
        totals["delivered"] += session.delivered
        totals["coalesced"] += session.coalesced
        totals["dropped"] += session.dropped
        totals["returned"] += session.returned_to_cursor
        if live:
            totals["queued"] += session.queued_updates

    def finalize(self) -> Dict[str, int]:
        """Fold the live session (if any) into totals; returns totals.

        Call once at measurement end.  ``offered`` then equals
        ``delivered + coalesced + dropped + returned + queued`` — the
        conservation invariant E11 reports as attribution coverage.
        """
        if self.session is not None:
            self._absorb(self.session, live=True)
            self.session = None
        return self.totals

    @property
    def attributed_fraction(self) -> float:
        """Attributed / offered over this client's lifetime (1.0 = all)."""
        offered = self.totals["offered"]
        if offered == 0:
            return 1.0
        accounted = sum(
            self.totals[key] for key in _TOTAL_KEYS if key != "offered"
        )
        return accounted / offered
