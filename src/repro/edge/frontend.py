"""Edge frontends: session termination for both delivery pipelines.

A frontend is the fan-out node the paper's architecture needs between
the source tier and millions of clients.  Two implementations, one per
pipeline, both hosting :class:`~repro.edge.session.ClientSession`s:

:class:`WatchEdgeFrontend`
    Wraps a :class:`~repro.core.relay.WatchRelay`: the frontend holds a
    materialized replica of the keyspace and serves *both* reconnect
    paths locally — delta catch-up from the relay's fan-out buffer and
    snapshot re-serves from the relay's versioned state — so a
    reconnect storm costs the source tier nothing beyond the one
    standing relay stream.  When ``net`` is given, that stream crosses
    a lossy link via ``ReliableFanoutLink`` (ordered ReliableChannel +
    breaker), the resilience hop the tentpole requires.

:class:`PubsubEdgeFrontend`
    Subscribes a free consumer to the topic (every message, once per
    frontend) and routes messages to sessions by key range.  There is
    no snapshot to re-serve — pubsub's contract is every-message — so
    reconnect catch-up *replays the broker's partition logs* from the
    client's offset cursor: a storm multiplies load on the source-side
    log, which is exactly the §4.4 amplification E11 measures.

The reconnect decision rule lives here: a client whose cursor is within
``catchup_threshold`` of the frontend head gets delta catch-up; one
further behind (or below the retained floor) gets a snapshot re-serve
(watch) or a longer log replay (pubsub).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro._types import KeyRange, Version
from repro.causal.buffer import CausalBuffer, CausalBufferConfig
from repro.causal.stamp import StampIndex
from repro.core.api import WatchCallback
from repro.core.linked_cache import LinkedCacheConfig, SnapshotUnavailable
from repro.core.relay import (
    ReliableFanoutEndpoint,
    ReliableFanoutLink,
    WatchRelay,
)
from repro.core.stream import WatcherConfig
from repro.core.watch_system import WatchSystem, WatchSystemConfig
from repro.edge.session import (
    ClientSession,
    SessionConfig,
    SlowConsumerPolicy,
    Update,
)
from repro.edge.session_table import SessionTable
from repro.obs.trace import TraceSampler, hops, payload_version
from repro.pubsub.broker import Broker
from repro.pubsub.consumer import Consumer
from repro.pubsub.message import Message
from repro.resilience.channel import ChannelConfig, ReliableChannel
from repro.sim.kernel import Simulation
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Network
from repro.transport.batcher import BatchConfig

#: the relay->session pipe: instant, unbounded — backpressure is the
#: session queue's job, never the relay-side watcher queue's
_FEED_CONFIG = WatcherConfig(
    delivery_latency=0.0, service_time=0.0, max_backlog=1_000_000_000
)


@dataclass
class EdgeFrontendConfig:
    """Shared frontend parameters (both pipelines)."""

    session: SessionConfig = field(default_factory=SessionConfig)
    #: Reconnect decision rule: delta catch-up when the client's cursor
    #: is within this many versions (watch) or messages (pubsub) of the
    #: frontend head; otherwise snapshot re-serve / full log replay.
    catchup_threshold: int = 500
    #: Edge-served snapshot latency (local state, no source round-trip).
    snapshot_latency: float = 0.005
    #: Retry delay while the relay is mid-resync (SnapshotUnavailable).
    snapshot_retry: float = 0.05
    #: Pubsub catch-up: log messages replayed per batch, and the pause
    #: between batches (models a fetch round-trip to the broker log).
    replay_batch: int = 64
    replay_latency: float = 0.002
    #: When set, each session's relay feed coalesces events under this
    #: flush policy and offers them via ``ClientSession.offer_batch`` —
    #: one drain kick per frame instead of per update.  None (default)
    #: keeps the per-event offer path unchanged.
    feed_batch: Optional[BatchConfig] = None
    #: Shared-drain tick (seconds).  When set, sessions join the
    #: frontend :class:`~repro.edge.session_table.SessionTable`'s
    #: intrusive ready list and ONE pump event per tick delivers one
    #: item for every ready session — O(active sessions) kernel events
    #: instead of one per session per item, the E14 scaling mode.  The
    #: tick replaces ``session.delivery_latency`` for drain pacing.
    #: None (default) keeps per-session drain events, byte-identical
    #: to the pre-table schedule.
    drain_interval: Optional[float] = None
    #: Trace 1-in-N connected sessions (deterministic, by connect
    #: order); sampled-out sessions run with ``tracer=None`` so a
    #: million-session run doesn't spend its memory on trace events.
    #: 1 (default) traces everything.
    trace_sample: int = 1
    #: Whether each session's relay feed subscribes to progress events.
    #: Feeds discard them (sessions deliver values, not knowledge
    #: windows), but their delivery still costs one queued event per
    #: session per progress tick — O(sessions) work that E14 turns off
    #: (the frontend tracks knowledge centrally via the relay).  True
    #: (default) keeps the subscribed schedule byte-identical.
    feed_progress: bool = True
    #: Mass-snapshot storm knob: when set, a *reconnecting* client
    #: (``client.connects > 1``) is treated as at least this many
    #: versions (watch) / messages-per-partition (pubsub) behind the
    #: frontend head, however fresh its durable cursor actually is —
    #: modeling long-offline devices whose cursors sit below the GC /
    #: compaction floor.  With an age above ``catchup_threshold`` the
    #: watch path is forced onto the snapshot re-serve (range scan) and
    #: the pubsub path onto a full log replay that crosses retention
    #: holes (``replay_gaps``).  None (default) trusts the real cursor —
    #: byte-identical to the pre-knob schedule.
    reconnect_cursor_age: Optional[int] = None
    #: ``"fifo"`` (default) offers updates to sessions in arrival order.
    #: ``"causal"`` gates each session's feed through its own
    #: :class:`~repro.causal.buffer.CausalBuffer` (range-filtered,
    #: floored at the session's catch-up point), so a client never
    #: observes an update before an in-range update it causally depends
    #: on — bounded by ``causal_hold``.  See docs/causal.md.
    delivery_mode: str = "fifo"
    #: Bounded-hold deadline (seconds) for causal mode.
    causal_hold: float = 0.25

    def __post_init__(self) -> None:
        if self.catchup_threshold < 0:
            raise ValueError("catchup_threshold must be >= 0")
        if self.replay_batch < 1:
            raise ValueError("replay_batch must be >= 1")
        if self.drain_interval is not None and self.drain_interval < 0:
            raise ValueError("drain_interval must be >= 0")
        if self.reconnect_cursor_age is not None and self.reconnect_cursor_age < 0:
            raise ValueError("reconnect_cursor_age must be >= 0")
        if self.delivery_mode not in ("fifo", "causal"):
            raise ValueError("delivery_mode must be 'fifo' or 'causal'")
        if self.causal_hold <= 0:
            raise ValueError("causal_hold must be positive")


class _SessionFeed(WatchCallback):
    """Adapter: one relay watch feeding one client session.

    With ``config.feed_batch`` set, events buffer per session and flush
    as one ``offer_batch`` frame (on size or sim-clock linger).
    """

    __slots__ = ("frontend", "session", "_buffer", "_gen")

    def __init__(
        self,
        frontend: "WatchEdgeFrontend",
        session: ClientSession,
    ):
        self.frontend = frontend
        self.session = session
        self._buffer: list = []
        self._gen = 0

    def on_event(self, event) -> None:
        mutation = event.mutation
        update = Update(
            key=event.key,
            version=event.version,
            value=mutation.value,
            is_delete=mutation.is_delete,
        )
        self._offer(update)

    def _offer(self, update: Update) -> None:
        batch = self.frontend.config.feed_batch
        if batch is None:
            self.session.offer(update)
            return
        self._buffer.append(update)
        if len(self._buffer) == 1:
            gen = self._gen
            self.frontend.sim.post(
                batch.max_linger, lambda: self._linger_flush(gen)
            )
        if len(self._buffer) >= batch.max_batch:
            self._flush()

    def _linger_flush(self, gen: int) -> None:
        if self._buffer and self._gen == gen:
            self._flush()

    def _flush(self) -> None:
        updates = self._buffer
        self._buffer = []
        self._gen += 1
        self.session.offer_batch(updates)

    def on_progress(self, event) -> None:
        pass  # sessions deliver values, not knowledge windows

    def on_resync(self) -> None:
        # the relay lost history below this session's position (its own
        # upstream resync raised the fan-out floor); re-serve a snapshot
        self.frontend._feed_resynced(self.session)


class _CausalSessionFeed(_SessionFeed):
    """Feed with a causal gate ahead of the session queue.

    A subclass rather than an optional slot on ``_SessionFeed`` so the
    fifo-mode feed keeps its exact object size — the per-session memory
    accounting (E14, docs/scale.md) measures the feed object, and the
    causal tier must cost nothing when it is off.
    """

    __slots__ = ("causal",)

    def __init__(
        self,
        frontend: "WatchEdgeFrontend",
        session: ClientSession,
        causal: CausalBuffer,
    ):
        super().__init__(frontend, session)
        self.causal = causal

    def on_event(self, event) -> None:
        mutation = event.mutation
        update = Update(
            key=event.key,
            version=event.version,
            value=mutation.value,
            is_delete=mutation.is_delete,
        )
        stamp = self.frontend._stamp_for(event.key, event.version)
        self.causal.submit(
            event.key, event.version, stamp,
            lambda: self._offer(update),
        )


class WatchEdgeFrontend:
    """Watch-pipeline frontend: relay replica + client sessions."""

    def __init__(
        self,
        sim: Simulation,
        name: str,
        upstream,  # anything with watch_range (WatchSystem/StoreWatch/relay)
        snapshot_fn,
        net: Optional[Network] = None,
        channel_config: Optional[ChannelConfig] = None,
        config: Optional[EdgeFrontendConfig] = None,
        relay_config: Optional[LinkedCacheConfig] = None,
        fanout_config: Optional[WatchSystemConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
        causal_index: Optional[StampIndex] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.config = config or EdgeFrontendConfig()
        self.tracer = tracer
        self.up = True
        #: causal mode disables per-key supersession: coalescing hands
        #: the superseding update the queue position of the one it
        #: replaced — a reorder that jumps it ahead of its own causal
        #: deps (and starves deps out of *their* position) — see
        #: SessionConfig.coalesce
        self._session_config = self.config.session
        if (
            self.config.delivery_mode == "causal"
            and self._session_config.coalesce
        ):
            self._session_config = replace(
                self._session_config, coalesce=False
            )
        #: per-session causal gates (causal mode only); kept for
        #: experiment accounting — held depth, deadline releases
        self.causal_buffers: list = []
        self.sessions: Dict[str, ClientSession] = {}
        self.table = SessionTable(
            sim,
            drain_interval=self.config.drain_interval,
            sampler=TraceSampler(self.config.trace_sample),
        )
        self.connects = 0
        self.catchups_served = 0
        self.snapshots_served = 0
        self.snapshot_retries = 0
        self.feed_resyncs = 0
        #: snapshot re-serves answered from the per-range cache without
        #: re-running the range scan (mass-snapshot storms are O(distinct
        #: ranges) scans + O(sessions) copies, not O(sessions) scans)
        self.snapshot_cache_hits = 0
        #: (range.low, range.high) -> (version, items); one entry per
        #: distinct session key range, invalidated by version mismatch
        self._snapshot_cache: Dict[tuple, tuple] = {}
        #: source-tier load: snapshots the relay itself pulled from the
        #: store (edge-served client snapshots never touch this)
        self.source_snapshots = 0

        def counted_snapshot_fn(key_range):
            self.source_snapshots += 1
            return snapshot_fn(key_range)

        if net is not None:
            # source stream crosses the wire: upstream -> reliable link
            # -> endpoint -> local ingest watch system -> relay.  With a
            # causal index, stamps ride the event frames (their bytes
            # land in net.bytes.*) and the endpoint rebuilds a local
            # index for the session gates to read.
            local_index = StampIndex() if causal_index is not None else None
            self._ingest = WatchSystem(sim, name=f"{name}-ingest", tracer=tracer)
            self.endpoint = ReliableFanoutEndpoint(
                sim, net, f"{name}-ep", self._ingest,
                config=channel_config, metrics=metrics, tracer=tracer,
                causal_index=local_index,
            )
            self.link = ReliableFanoutLink(
                sim, upstream, net, f"{name}-uplink", f"{name}-ep",
                config=channel_config, metrics=metrics, tracer=tracer,
                causal_index=causal_index,
            )
            relay_upstream = self._ingest
            self._causal_index = local_index
        else:
            self._ingest = None
            self.endpoint = None
            self.link = None
            relay_upstream = upstream
            self._causal_index = causal_index
        self.relay = WatchRelay(
            sim, relay_upstream, counted_snapshot_fn, KeyRange.all(),
            config=relay_config, fanout_config=fanout_config,
            name=f"{name}-relay", tracer=tracer,
        )
        self.relay.start()

    # ------------------------------------------------------------------
    # session lifecycle

    def head_version(self) -> Version:
        """Newest version this frontend can serve."""
        return self.relay.knowledge.max_known_version()

    def connect(self, client) -> ClientSession:
        """Terminate a client session here; choose the catch-up path."""
        if not self.up:
            raise RuntimeError(f"frontend {self.name} is down")
        self.connects += 1
        tracer = self.tracer if self.table.sampler.keep(self.connects - 1) else None
        session = ClientSession(
            self.sim, f"{self.name}/{client.name}", client,
            key_range=client.key_range, config=self._session_config,
            on_closed=self._session_closed, tracer=tracer,
            table=self.table,
        )
        self.sessions[client.name] = session
        cursor = client.cursor
        head = self.head_version()
        age = self.config.reconnect_cursor_age
        if age is not None and client.connects > 1:
            cursor = min(cursor, max(0, head - age))
        staleness = head - cursor if head > cursor else 0
        session.staleness_at_connect = staleness
        client.staleness_at_connect.append(staleness)
        threshold = self.config.catchup_threshold
        if self.config.session.policy is SlowConsumerPolicy.DISCONNECT:
            # a delta catch-up larger than the queue bound is guaranteed
            # to overflow a disconnect-policy session before a single
            # delivery runs — the reconnect cycle would never progress
            threshold = min(threshold, self.config.session.max_queue)
        delta = staleness <= threshold
        if session.tracer is not None:
            session.tracer.record(
                hops.EDGE_CONNECT, self.name,
                session=session.name, client=client.name,
                mode="delta" if delta else "snapshot", staleness=staleness,
            )
        if delta:
            self.catchups_served += 1
            self._attach_feed(session, cursor)
        else:
            self._schedule_snapshot(session)
        return session

    def _stamp_for(self, key, version):
        if self._causal_index is None:
            return None
        return self._causal_index.lookup(key, version)

    def _attach_feed(self, session: ClientSession, from_version: Version) -> None:
        causal = None
        if self.config.delivery_mode == "causal":
            # floor at the catch-up point: deps the client already holds
            # (snapshot version / resume cursor) count as observed
            causal = CausalBuffer(
                self.sim,
                CausalBufferConfig(hold_deadline=self.config.causal_hold),
                name=f"{self.name}/{session.client.name}",
                in_range=session.key_range.contains,
                tracer=session.tracer,
                component=self.name,
            )
            causal.set_floor(from_version)
            self.causal_buffers.append(causal)
        if causal is not None:
            feed = _CausalSessionFeed(self, session, causal)
        else:
            feed = _SessionFeed(self, session)
        # the feed inherits the session's *sampled* tracer so an
        # unsampled session's relay feed records no per-delivery hops
        handle = self.relay.watch_range(
            session.key_range, from_version, feed, config=_FEED_CONFIG,
            tracer=session.tracer, progress=self.config.feed_progress,
        )
        if session.active:
            session._feed_handle = handle
        elif handle.active:
            # the catch-up replay itself closed the session (overflow)
            handle.cancel()

    def _feed_resynced(self, session: ClientSession) -> None:
        if not session.active or not self.up:
            return
        self.feed_resyncs += 1
        session._feed_handle = None
        self._schedule_snapshot(session)

    def _schedule_snapshot(self, session: ClientSession) -> None:
        self.sim.call_after(
            self.config.snapshot_latency, lambda: self._serve_snapshot(session)
        )

    def _serve_snapshot(self, session: ClientSession) -> None:
        if not session.active or not self.up:
            return
        try:
            version = self.relay.snapshot_version(session.key_range)
        except SnapshotUnavailable:
            # relay mid-(re)sync; back off and retry from edge state
            self.snapshot_retries += 1
            self.sim.call_after(
                self.config.snapshot_retry, lambda: self._serve_snapshot(session)
            )
            return
        cache_key = (session.key_range.low, session.key_range.high)
        cached = self._snapshot_cache.get(cache_key)
        if cached is not None and cached[0] == version:
            # same range at the same version: the relay state hasn't
            # moved, so the scan would rebuild an identical dict.
            # ``offer_snapshot`` copies, so sharing the items is safe.
            items = cached[1]
            self.snapshot_cache_hits += 1
        else:
            items = self.relay.data.items_at(session.key_range, version)
            self._snapshot_cache[cache_key] = (version, items)
        self.snapshots_served += 1
        if session.tracer is not None:
            session.tracer.record(
                hops.EDGE_SNAPSHOT, self.name,
                session=session.name, snapshot_version=version,
                size=len(items),
            )
        session.offer_snapshot(version, items)
        self._attach_feed(session, version)

    def _session_closed(self, session: ClientSession, reason: str) -> None:
        if self.sessions.get(session.client.name) is session:
            del self.sessions[session.client.name]
        handle = session._feed_handle
        session._feed_handle = None
        if handle is not None and handle.active:
            handle.cancel()

    # ------------------------------------------------------------------
    # Failable protocol

    def crash(self) -> None:
        """Fail the frontend: all sessions drop, the replica goes cold."""
        if not self.up:
            return
        self.up = False
        for session in list(self.sessions.values()):
            session.close("frontend-down")
        if self.link is not None:
            self.link.crash()
            self.endpoint.crash()
        self.relay.suspend()

    def recover(self) -> None:
        if self.up:
            return
        self.up = True
        if self.link is not None:
            self.link.recover()
            self.endpoint.recover()
        self.relay.resume()

    @property
    def active_sessions(self) -> int:
        return len(self.sessions)


class PubsubEdgeFrontend:
    """Pubsub-pipeline frontend: free consumer + log-replay catch-up."""

    def __init__(
        self,
        sim: Simulation,
        name: str,
        broker: Broker,
        topic: str,
        config: Optional[EdgeFrontendConfig] = None,
        net: Optional[Network] = None,
        channel_config: Optional[ChannelConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> None:
        if config is None:
            config = EdgeFrontendConfig(
                session=SessionConfig(policy=SlowConsumerPolicy.DROP)
            )
        if config.session.policy is SlowConsumerPolicy.COALESCE:
            raise ValueError(
                "coalesce is watch-only by construction: the pubsub "
                "contract is every-message delivery (§4.4)"
            )
        self.sim = sim
        self.name = name
        self.config = config
        self.tracer = tracer
        self.up = True
        self.topic = broker.topic(topic)
        self.sessions: Dict[str, ClientSession] = {}
        #: per-session causal gates (causal mode only), by client name.
        #: Stamps arrive in-band on message payloads (CDC stamping), so
        #: no index plumbing is needed on this pipeline.
        self._causal: Dict[str, CausalBuffer] = {}
        self.causal_buffers: list = []
        self.table = SessionTable(
            sim,
            drain_interval=config.drain_interval,
            sampler=TraceSampler(config.trace_sample),
        )
        self.connects = 0
        self.catchups_served = 0
        self.events_ingested = 0
        #: source-tier load: messages re-read from the broker's
        #: partition logs for reconnect catch-up
        self.replayed = 0
        #: offsets silently missing during replay (GC'd / compacted)
        self.replay_gaps = 0
        self._consumer = Consumer(sim, f"{name}-consumer", handler=self._on_message)
        self.feed = broker.free_consumer(topic, self._consumer)
        if net is not None:
            # broker-side relay of the free-consumer stream to the
            # frontend across the wire; ordered so per-partition offset
            # dedupe sees monotone arrivals
            if channel_config is None:
                channel_config = ChannelConfig(ordered=True)
            self._uplink = ReliableChannel(
                sim, net, f"{name}-uplink", config=channel_config,
                metrics=metrics, tracer=tracer,
            )
            self._edge_channel = ReliableChannel(
                sim, net, f"{name}-ep",
                handler=lambda src, message: self._ingest(message),
                config=channel_config, metrics=metrics, tracer=tracer,
            )
        else:
            self._uplink = None
            self._edge_channel = None

    # ------------------------------------------------------------------
    # live path: broker -> free consumer -> (wire) -> sessions

    def _on_message(self, message: Message):
        if self._uplink is not None:
            self._uplink.send(f"{self.name}-ep", message)
        else:
            self._ingest(message)
        return True

    def _ingest(self, message: Message) -> None:
        if not self.up:
            return
        self.events_ingested += 1
        for session in list(self.sessions.values()):
            if not session.live:
                continue  # still replaying the log; it will get there
            if message.key is not None and not session.key_range.contains(message.key):
                continue
            expected = session.expected_offsets.get(message.partition, 0)
            if message.offset < expected:
                continue  # already served by replay (or a dup)
            session.expected_offsets[message.partition] = message.offset + 1
            self._offer_session(session, message)

    def _offer_session(self, session: ClientSession, message: Message) -> None:
        """Offer one message to one session, through its causal gate
        (if causal mode) or directly."""
        update = self._update_from(message)
        causal = self._causal.get(session.client.name)
        if causal is None:
            session.offer(update)
            return
        payload = message.payload
        stamp = payload.get("causal") if isinstance(payload, dict) else None
        causal.submit(
            message.key, update.version, stamp,
            lambda: session.offer(update),
        )

    @staticmethod
    def _update_from(message: Message) -> Update:
        payload = message.payload
        version = payload_version(payload)
        value = payload.get("value") if isinstance(payload, dict) else payload
        return Update(
            key=message.key,
            version=version if version is not None else 0,
            value=value,
            partition=message.partition,
            offset=message.offset,
        )

    # ------------------------------------------------------------------
    # session lifecycle

    def head_offsets(self) -> Dict[int, int]:
        return {log.partition: log.next_offset for log in self.topic.partitions}

    def connect(self, client) -> ClientSession:
        """Terminate a session; replay the log from the client's cursor."""
        if not self.up:
            raise RuntimeError(f"frontend {self.name} is down")
        self.connects += 1
        tracer = self.tracer if self.table.sampler.keep(self.connects - 1) else None
        session = ClientSession(
            self.sim, f"{self.name}/{client.name}", client,
            key_range=client.key_range, config=self.config.session,
            on_closed=self._session_closed, tracer=tracer,
            table=self.table,
        )
        offsets = dict(client.offsets)
        for log in self.topic.partitions:
            offsets.setdefault(log.partition, 0)
        age = self.config.reconnect_cursor_age
        if age is not None and client.connects > 1:
            # storm knob: the reconnecting cursor is at least ``age``
            # messages behind each partition head, so replay must cross
            # whatever retention GC / compaction removed (replay_gaps)
            for log in self.topic.partitions:
                aged = log.next_offset - age
                if aged < 0:
                    aged = 0
                if aged < offsets[log.partition]:
                    offsets[log.partition] = aged
        session.expected_offsets = offsets
        staleness = sum(
            max(0, log.next_offset - offsets[log.partition])
            for log in self.topic.partitions
        )
        session.staleness_at_connect = staleness
        client.staleness_at_connect.append(staleness)
        self.sessions[client.name] = session
        if self.config.delivery_mode == "causal":
            causal = CausalBuffer(
                self.sim,
                CausalBufferConfig(hold_deadline=self.config.causal_hold),
                name=f"{self.name}/{client.name}",
                in_range=session.key_range.contains,
                tracer=session.tracer,
                component=self.name,
            )
            # the durable *version* cursor floors the gate: deps the
            # client observed before disconnecting are already met, so
            # replay never stalls on history it is not going to re-see
            causal.set_floor(client.cursor)
            self._causal[client.name] = causal
            self.causal_buffers.append(causal)
        if session.tracer is not None:
            session.tracer.record(
                hops.EDGE_CONNECT, self.name,
                session=session.name, client=client.name,
                mode="replay" if staleness else "live", staleness=staleness,
            )
        if staleness:
            # there is no snapshot to re-serve: pubsub must deliver every
            # message, however far behind — so catch-up always replays
            # the source log (catchup_threshold only sizes the batches
            # already; a longer lag just means more batches)
            self.catchups_served += 1
            session.live = False
            self.sim.call_after(
                self.config.replay_latency, lambda: self._replay_step(session)
            )
        return session

    def _replay_step(self, session: ClientSession) -> None:
        if not session.active or not self.up:
            return
        behind = False
        for log in self.topic.partitions:
            expected = session.expected_offsets.get(log.partition, 0)
            if expected >= log.next_offset:
                continue
            messages = log.read_from(expected, limit=self.config.replay_batch)
            if not messages:
                # everything from the cursor to the head is gone (GC)
                self.replay_gaps += log.next_offset - expected
                session.expected_offsets[log.partition] = log.next_offset
                continue
            for message in messages:
                if message.offset > expected:
                    # silent hole: retention GC or compaction (§3.1)
                    self.replay_gaps += message.offset - expected
                expected = message.offset + 1
                session.expected_offsets[log.partition] = expected
                self.replayed += 1
                self._offer_session(session, message)
                if not session.active:
                    return  # replay overflowed a disconnect-policy session
            if expected < log.next_offset:
                behind = True
        if behind:
            self.sim.call_after(
                self.config.replay_latency, lambda: self._replay_step(session)
            )
        else:
            session.live = True

    def _session_closed(self, session: ClientSession, reason: str) -> None:
        if self.sessions.get(session.client.name) is session:
            del self.sessions[session.client.name]
            self._causal.pop(session.client.name, None)

    # ------------------------------------------------------------------
    # Failable protocol

    def crash(self) -> None:
        if not self.up:
            return
        self.up = False
        for session in list(self.sessions.values()):
            session.close("frontend-down")
        self._consumer.crash()
        if self._uplink is not None:
            self._uplink.crash()
            self._edge_channel.crash()

    def recover(self) -> None:
        if self.up:
            return
        self.up = True
        self._consumer.recover()
        if self._uplink is not None:
            self._uplink.recover()
            self._edge_channel.recover()

    @property
    def active_sessions(self) -> int:
        return len(self.sessions)
