"""The edge delivery tier: client sessions on fan-out frontends.

Terminates many resumable client sessions on frontend nodes served
from either pipeline (watch relays or pubsub consumer feeds), with
per-session credit-based flow control, pluggable slow-consumer
policies, durable reconnect cursors, and sharded session placement.
See docs/edge.md.
"""

from repro.edge.client import EdgeClient
from repro.edge.frontend import (
    EdgeFrontendConfig,
    PubsubEdgeFrontend,
    WatchEdgeFrontend,
)
from repro.edge.placement import SessionPlacement
from repro.edge.session_table import SessionTable
from repro.edge.session import (
    ClientSession,
    SessionConfig,
    SlowConsumerPolicy,
    SnapshotDelivery,
    Update,
)

__all__ = [
    "ClientSession",
    "EdgeClient",
    "EdgeFrontendConfig",
    "PubsubEdgeFrontend",
    "SessionConfig",
    "SessionPlacement",
    "SessionTable",
    "SlowConsumerPolicy",
    "SnapshotDelivery",
    "Update",
    "WatchEdgeFrontend",
]
