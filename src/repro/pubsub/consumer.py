"""Consumers: simulated processing nodes for pubsub delivery.

A :class:`Consumer` models a consumer application instance:

- it processes deliveries **serially** with a configurable service time
  (this is what makes head-of-line blocking observable, §3.2.3);
- it acknowledges a message only after the handler finishes — crashing
  mid-processing loses the ack, and the subscription's deadline
  machinery redelivers (at-least-once);
- it can crash and recover (the §3.1 "data center under maintenance for
  multiple days" scenario is ``consumer.crash(); ...; recover()``).

:class:`ConsumerGroup` and :class:`FreeConsumer` are the two §2 consumer
models: a group shares a subscription (each message handled by one
member); a free consumer gets its *own* subscription and therefore every
message in the topic.
"""

from __future__ import annotations

from typing import Any, Callable, Deque, List, Optional, TYPE_CHECKING
from collections import deque

from repro.pubsub.message import Message
from repro.sim.kernel import Simulation

if TYPE_CHECKING:  # pragma: no cover
    from repro.pubsub.subscription import Subscription

#: Handler result: True/None = success (ack); False = failure (nack).
Handler = Callable[[Message], Optional[bool]]

#: Batch handler: one invocation applies N messages (group-apply).
#: Same result convention; False nacks the whole group.
BatchHandler = Callable[[List[Message]], Optional[bool]]


class Consumer:
    """One consumer application instance with a serial processing loop."""

    def __init__(
        self,
        sim: Simulation,
        name: str,
        handler: Optional[Handler] = None,
        service_time: float = 0.0,
        service_time_fn: Optional[Callable[[Message], float]] = None,
        queue_capacity: Optional[int] = None,
        batch_handler: Optional[BatchHandler] = None,
        batch_overhead: float = 0.0,
    ) -> None:
        if service_time < 0:
            raise ValueError("service_time must be >= 0")
        if batch_overhead < 0:
            raise ValueError("batch_overhead must be >= 0")
        self.sim = sim
        self.name = name
        self.handler = handler or (lambda message: True)
        #: when set, a batched delivery is applied by ONE invocation of
        #: this handler (group-apply); otherwise the per-message handler
        #: runs over the group in order
        self.batch_handler = batch_handler
        self.service_time = service_time
        #: when set, overrides ``service_time`` per message (lets work
        #: queues model heterogeneous task costs and warm/cold state)
        self.service_time_fn = service_time_fn
        #: fixed per-delivery cost added to a batch's summed service
        #: time — the knob that makes per-message dispatch overhead
        #: (and therefore batching's throughput win) modelable
        self.batch_overhead = batch_overhead
        self.queue_capacity = queue_capacity
        self.up = True
        self.processed = 0
        self.failed = 0
        self.dropped_while_down = 0
        self._queue: Deque[tuple[Message, Callable[[], None], Callable[[], None]]] = deque()
        self._busy = False
        self._on_recover: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # delivery entry point (called by Subscription)

    def deliver(self, message: Message, ack: Callable[[], None], nack: Callable[[], None]) -> None:
        """Receive one delivery; queues it for serial processing.

        While down, deliveries are dropped on the floor — the broker's
        ack deadline will redeliver them later.
        """
        if not self.up:
            self.dropped_while_down += 1
            return
        if self.queue_capacity is not None and len(self._queue) >= self.queue_capacity:
            # local overload: refuse so the broker redelivers later
            nack()
            return
        self._queue.append((message, ack, nack))
        if not self._busy:
            self._busy = True
            self.sim.call_after(0.0, self._process_next)

    def deliver_batch(
        self,
        messages: List[Message],
        ack: Callable[[], None],
        nack: Callable[[], None],
    ) -> None:
        """Receive a group delivery; processed as ONE work item.

        The group occupies a single queue slot and is applied by a
        single handler invocation (``batch_handler`` if set), paying
        ``batch_overhead`` once plus the summed per-message service
        time — N messages for one dispatch's fixed cost.
        """
        if not self.up:
            self.dropped_while_down += len(messages)
            return
        if self.queue_capacity is not None and len(self._queue) >= self.queue_capacity:
            nack()
            return
        self._queue.append((messages, ack, nack))
        if not self._busy:
            self._busy = True
            self.sim.call_after(0.0, self._process_next)

    def _process_next(self) -> None:
        if not self.up or not self._queue:
            self._busy = False
            return
        message, ack, nack = self._queue.popleft()
        is_batch = type(message) is list

        def finish() -> None:
            if not self.up:
                # crashed mid-processing: no ack; broker will redeliver
                return
            try:
                ok = self._handle_batch(message) if is_batch else self.handler(message)
            except Exception:
                ok = False
            count = len(message) if is_batch else 1
            if ok is False:
                self.failed += count
                nack()
            else:
                self.processed += count
                ack()
            self._process_next()

        if is_batch:
            if self.service_time_fn is not None:
                delay = sum(self.service_time_fn(m) for m in message)
            else:
                delay = self.service_time * len(message)
            delay += self.batch_overhead
        elif self.service_time_fn is not None:
            delay = self.service_time_fn(message)
        else:
            delay = self.service_time
        if delay > 0:
            self.sim.call_after(delay, finish)
        else:
            finish()

    def _handle_batch(self, messages: List[Message]) -> Optional[bool]:
        if self.batch_handler is not None:
            return self.batch_handler(messages)
        for message in messages:
            if self.handler(message) is False:
                return False
        return True

    # ------------------------------------------------------------------
    # failure model (Failable protocol)

    def crash(self) -> None:
        """Stop processing; queued and in-process deliveries are lost."""
        self.up = False
        self._queue.clear()
        self._busy = False

    def recover(self) -> None:
        """Resume; redeliveries arrive via broker deadlines/pumps."""
        if self.up:
            return
        self.up = True
        for callback in list(self._on_recover):
            callback()

    def on_recover(self, callback: Callable[[], None]) -> None:
        """Register a hook run after recovery (subscriptions use this to
        pump promptly instead of waiting for the next publish)."""
        self._on_recover.append(callback)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)


class ConsumerGroup:
    """Convenience wrapper: a subscription plus its member consumers."""

    def __init__(self, subscription: "Subscription") -> None:
        self.subscription = subscription
        self.consumers: List[Consumer] = []

    def join(self, consumer: Consumer) -> Consumer:
        self.consumers.append(consumer)
        self.subscription.add_member(consumer)
        consumer.on_recover(self.subscription.pump_all)
        return consumer

    def leave(self, consumer: Consumer) -> None:
        if consumer in self.consumers:
            self.consumers.remove(consumer)
        self.subscription.remove_member(consumer.name)

    @property
    def total_processed(self) -> int:
        return sum(c.processed for c in self.consumers)

    def backlog(self) -> int:
        return self.subscription.backlog()


class FreeConsumer:
    """A free consumer: a dedicated subscription delivering everything
    in the topic to one consumer (terminology from Koutanov, §2)."""

    def __init__(self, subscription: "Subscription", consumer: Consumer) -> None:
        self.subscription = subscription
        self.consumer = consumer
        subscription.add_member(consumer)
        consumer.on_recover(subscription.pump_all)

    @property
    def processed(self) -> int:
        return self.consumer.processed

    def backlog(self) -> int:
        return self.subscription.backlog()
