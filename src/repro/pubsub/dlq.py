"""Dead-letter queues (§3.3).

The paper lists DLQs among the "specialized extensions" pubsub systems
grew because the bundled storage layer keeps needing patches.  We
implement them faithfully: after ``max_attempts`` failed delivery
attempts, the message is appended to a dead-letter topic and counted as
handled for the source subscription — which means the *application*
outcome (the message was never processed) is hidden behind an
operational artifact someone must remember to drain.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeadLetterPolicy:
    """Route messages to ``dlq_topic`` after ``max_attempts`` attempts."""

    dlq_topic: str
    max_attempts: int = 5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
