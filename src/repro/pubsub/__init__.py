"""The pubsub baseline: a complete datacenter-style pubsub system.

This package implements the system the paper critiques (Figure 1), with
the contracts shared by Kafka / Cloud Pub/Sub / Pulsar / Service Bus:

- topics split into partitions, each an append-only offset log
  (:mod:`~repro.pubsub.log`);
- producers publish with optional keys; key- or round-robin
  partitioning (:mod:`~repro.pubsub.topic`);
- *consumer groups* that distribute messages among members (random,
  partition-affine, or key-affine routing) with per-message acks and
  at-least-once redelivery (:mod:`~repro.pubsub.consumer`,
  :mod:`~repro.pubsub.subscription`);
- *free consumers* that receive every message of a topic;
- bounded retention with background garbage collection that deletes old
  messages **whether or not they were consumed, without notifying
  consumers** — deliberately, because that is the behaviour of real
  systems and the crux of §3.1;
- topic compaction (keep a recent window of every version, and the
  latest version per key before it) — §3.1;
- dead-letter queues (:mod:`~repro.pubsub.dlq`) and replay/seek
  (:mod:`~repro.pubsub.replay`) — the "ad hoc storage APIs" of §3.3.

Everything runs on the shared simulation kernel so backlogs of days can
be produced deterministically.
"""

from repro.pubsub.errors import PubsubError, UnknownTopicError, OffsetOutOfRangeError
from repro.pubsub.message import Message
from repro.pubsub.log import PartitionLog, RetentionPolicy, CompactionPolicy
from repro.pubsub.topic import Topic, Partitioner
from repro.pubsub.broker import Broker, BrokerConfig
from repro.pubsub.subscription import Subscription, RoutingPolicy
from repro.pubsub.consumer import Consumer, ConsumerGroup, FreeConsumer
from repro.pubsub.dlq import DeadLetterPolicy
from repro.pubsub.replay import SeekTarget

__all__ = [
    "PubsubError",
    "UnknownTopicError",
    "OffsetOutOfRangeError",
    "Message",
    "PartitionLog",
    "RetentionPolicy",
    "CompactionPolicy",
    "Topic",
    "Partitioner",
    "Broker",
    "BrokerConfig",
    "Subscription",
    "RoutingPolicy",
    "Consumer",
    "ConsumerGroup",
    "FreeConsumer",
    "DeadLetterPolicy",
    "SeekTarget",
]
