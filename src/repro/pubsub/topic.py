"""Topics and partitioning.

A topic is a named set of partitions.  The partitioner maps a published
message to a partition: by key hash when a key is present (so a key's
messages are totally ordered within one partition — the property the
§3.2.1 "partition-serial" replication strategy relies on), else
round-robin.  Static partition counts are deliberate: the paper's
§3.1/§3.2.4 complaint is precisely that pubsub affinity is tied to
*static* partitions while application consumers shard *dynamically*.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, List, Optional

from repro.pubsub.log import CompactionPolicy, PartitionLog, RetentionPolicy
from repro.pubsub.message import Message


def _stable_hash(key: str) -> int:
    """Deterministic across processes (unlike built-in ``hash``)."""
    return int.from_bytes(hashlib.md5(key.encode("utf-8")).digest()[:8], "big")


class Partitioner:
    """Maps (key, counter) to a partition index."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions
        self._round_robin = 0
        #: key -> partition memo.  The md5 digest is deterministic, so
        #: the memo can never change an answer — it only amortizes the
        #: hash to one digest per *distinct* key instead of one per
        #: publish (real workloads publish hot keys repeatedly; the
        #: broker round-trip benchmark spends ~10% of its profile
        #: here without it).  Bounded by the live key population.
        self._memo: dict = {}

    def partition_for(self, key: Optional[str]) -> int:
        if key is not None:
            partition = self._memo.get(key)
            if partition is None:
                partition = _stable_hash(key) % self.num_partitions
                self._memo[key] = partition
            return partition
        partition = self._round_robin % self.num_partitions
        self._round_robin += 1
        return partition


class Topic:
    """A named set of partition logs sharing retention/compaction."""

    def __init__(
        self,
        name: str,
        num_partitions: int = 1,
        retention: RetentionPolicy = RetentionPolicy(),
        compaction: Optional[CompactionPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.partitioner = Partitioner(num_partitions)
        self.partitions: List[PartitionLog] = [
            PartitionLog(name, idx, retention=retention, compaction=compaction, clock=clock)
            for idx in range(num_partitions)
        ]

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def append(self, key: Optional[str], payload: Any) -> Message:
        """Route to a partition and append."""
        partition = self.partitioner.partition_for(key)
        return self.partitions[partition].append(key, payload)

    def run_gc(self) -> int:
        """Run retention GC on all partitions; total deleted."""
        return sum(log.run_gc() for log in self.partitions)

    def run_compaction(self) -> int:
        """Run compaction on all partitions; total deleted."""
        return sum(log.run_compaction() for log in self.partitions)

    @property
    def total_messages_published(self) -> int:
        return sum(log.next_offset for log in self.partitions)

    @property
    def total_messages_retained(self) -> int:
        return sum(len(log) for log in self.partitions)

    @property
    def total_messages_gced(self) -> int:
        return sum(log.messages_gced for log in self.partitions)

    @property
    def total_messages_compacted(self) -> int:
        return sum(log.messages_compacted for log in self.partitions)

    @property
    def bytes_written(self) -> int:
        """Durable bytes appended across partitions (E8 accounting)."""
        return sum(log.bytes_written for log in self.partitions)
