"""Partition logs: the hidden durable storage layer of pubsub.

Each topic partition is an append-only log of messages addressed by
dense offsets.  The log embodies the two §3.1 behaviours the paper
criticizes:

- **Retention GC** (:class:`RetentionPolicy`): messages older than the
  retention period (or beyond a size bound) are deleted *regardless of
  whether any consumer has processed them*.  The log keeps only a
  ``gc_floor``; consumers whose cursor is below the floor silently skip
  ahead — they are not notified, mirroring deployed systems.
- **Compaction** (:class:`CompactionPolicy`): for keyed topics, offsets
  older than the compaction window keep only the latest message per
  key.  Intermediate versions vanish; again without notification.

The log counts every byte appended (``bytes_written``) because the
paper's efficiency argument (§4.4) is that this is a *second* durable
log that the unbundled model does not need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.pubsub.errors import OffsetOutOfRangeError
from repro.pubsub.message import Message


@dataclass(frozen=True)
class RetentionPolicy:
    """Bounds on retained messages.

    ``max_age`` deletes messages whose publish time is older than the
    given number of seconds; ``max_messages`` bounds the retained count.
    ``None`` disables the respective bound ("retain indefinitely", which
    §3.1 notes is undesirable but possible).
    """

    max_age: Optional[float] = None
    max_messages: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_age is not None and self.max_age <= 0:
            raise ValueError("max_age must be positive when set")
        if self.max_messages is not None and self.max_messages < 1:
            raise ValueError("max_messages must be >= 1 when set")

    @property
    def unbounded(self) -> bool:
        return self.max_age is None and self.max_messages is None


@dataclass(frozen=True)
class CompactionPolicy:
    """Keyed compaction: keep every message in the recent window, and
    only the latest version of each key before it (§3.1)."""

    recent_window: float

    def __post_init__(self) -> None:
        if self.recent_window < 0:
            raise ValueError("recent_window must be >= 0")


class PartitionLog:
    """Append-only message log for a single partition."""

    def __init__(
        self,
        topic: str,
        partition: int,
        retention: RetentionPolicy = RetentionPolicy(),
        compaction: Optional[CompactionPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.topic = topic
        self.partition = partition
        self.retention = retention
        self.compaction = compaction
        self._clock = clock or (lambda: 0.0)
        self._messages: List[Message] = []  # retained, offset order
        self._next_offset = 0
        self._gc_floor = 0  # offsets below this may be gone
        self.bytes_written = 0
        self.messages_gced = 0  # retention GC deletions
        self.messages_compacted = 0  # compaction deletions

    # ------------------------------------------------------------------
    # appending

    def append(self, key: Optional[str], payload: Any) -> Message:
        """Append a message; returns it with its assigned offset."""
        message = Message(
            topic=self.topic,
            partition=self.partition,
            offset=self._next_offset,
            key=key,
            payload=payload,
            publish_time=self._clock(),
        )
        self._next_offset += 1
        self._messages.append(message)
        self.bytes_written += message.size()
        return message

    # ------------------------------------------------------------------
    # reading

    @property
    def next_offset(self) -> int:
        """Offset the next append will get (== high watermark)."""
        return self._next_offset

    @property
    def gc_floor(self) -> int:
        """Lowest offset guaranteed not to have been deleted by
        retention GC.  (Compacted holes can exist above the floor.)"""
        return self._gc_floor

    def __len__(self) -> int:
        return len(self._messages)

    def read_from(self, offset: int, limit: Optional[int] = None) -> List[Message]:
        """Retained messages with offset >= ``offset``, in order.

        Deliberately does **not** raise when ``offset`` is below the GC
        floor: the normal consumption path silently skips deleted
        messages, which is the undetectable loss of §3.1.  Use
        :meth:`read_from_strict` for APIs that do surface the error
        (replay/seek).
        """
        result: List[Message] = []
        for message in self._iter_from(offset):
            result.append(message)
            if limit is not None and len(result) >= limit:
                break
        return result

    def read_from_strict(self, offset: int, limit: Optional[int] = None) -> List[Message]:
        """Like :meth:`read_from` but raises
        :class:`OffsetOutOfRangeError` below the GC floor."""
        if offset < self._gc_floor:
            raise OffsetOutOfRangeError(offset, self._gc_floor)
        return self.read_from(offset, limit)

    def _iter_from(self, offset: int):
        # binary search over retained messages (offset order, may have holes)
        lo, hi = 0, len(self._messages)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._messages[mid].offset < offset:
                lo = mid + 1
            else:
                hi = mid
        return iter(self._messages[lo:])

    def get(self, offset: int) -> Optional[Message]:
        """The retained message at ``offset`` exactly, or None."""
        for message in self._iter_from(offset):
            return message if message.offset == offset else None
        return None

    def offset_for_time(self, t: float) -> int:
        """Smallest retained offset with publish_time >= ``t`` (or the
        high watermark if none) — the basis of seek-to-timestamp."""
        for message in self._messages:
            if message.publish_time >= t:
                return message.offset
        return self._next_offset

    # ------------------------------------------------------------------
    # retention GC & compaction

    def run_gc(self) -> int:
        """Apply the retention policy now; returns messages deleted.

        GC never consults consumer cursors — that is the point of §3.1.
        """
        if self.retention.unbounded or not self._messages:
            return 0
        now = self._clock()
        cutoff_idx = 0
        if self.retention.max_age is not None:
            horizon = now - self.retention.max_age
            while (
                cutoff_idx < len(self._messages)
                and self._messages[cutoff_idx].publish_time < horizon
            ):
                cutoff_idx += 1
        if self.retention.max_messages is not None:
            over = len(self._messages) - self.retention.max_messages
            cutoff_idx = max(cutoff_idx, over)
        if cutoff_idx <= 0:
            return 0
        deleted = self._messages[:cutoff_idx]
        del self._messages[:cutoff_idx]
        self._gc_floor = max(self._gc_floor, deleted[-1].offset + 1)
        self.messages_gced += cutoff_idx
        return cutoff_idx

    def run_compaction(self) -> int:
        """Compact keyed messages older than the recent window.

        Keeps the newest message per key among the old section (plus all
        unkeyed messages, which cannot be compacted).  Returns messages
        deleted.  Holes do not move the GC floor: reads above the floor
        simply skip them — subscribers "do not discover that unseen
        events have been compacted" (§3.1).
        """
        if self.compaction is None or not self._messages:
            return 0
        horizon = self._clock() - self.compaction.recent_window
        old_end = 0
        while (
            old_end < len(self._messages)
            and self._messages[old_end].publish_time < horizon
        ):
            old_end += 1
        if old_end == 0:
            return 0
        latest_per_key: Dict[str, int] = {}
        for idx in range(old_end):
            message = self._messages[idx]
            if message.key is not None:
                latest_per_key[message.key] = idx
        keep_idx = set(latest_per_key.values())
        survivors: List[Message] = []
        deleted = 0
        for idx in range(old_end):
            message = self._messages[idx]
            if message.key is None or idx in keep_idx:
                survivors.append(message)
            else:
                deleted += 1
        if deleted:
            self._messages[:old_end] = survivors
            self.messages_compacted += deleted
        return deleted

    def retained_messages(self) -> List[Message]:
        """All retained messages (oldest first) — test/inspection aid."""
        return list(self._messages)
