"""Pubsub messages."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional


@dataclass(frozen=True)
class Message:
    """One published message as stored in a partition log.

    ``offset`` is assigned by the partition at append time and is unique
    and dense within the partition.  ``key`` is optional; key-based
    partitioning, key-affine routing, and compaction all require it.
    ``size`` feeds the hard-state accounting of experiment E8.
    """

    topic: str
    partition: int
    offset: int
    key: Optional[str]
    payload: Any
    publish_time: float

    def size(self) -> int:
        """Rough encoded size in bytes."""
        key_len = len(self.key) if self.key is not None else 0
        return 24 + key_len + len(repr(self.payload))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message({self.topic}[{self.partition}]@{self.offset} "
            f"key={self.key!r})"
        )


from repro.sim.wire import register as _wire_register  # noqa: E402

_wire_register(
    Message,
    "pubsub.Message",
    ("topic", "partition", "offset", "key", "payload", "publish_time"),
)
