"""Subscriptions: cursors, routing, acks, redelivery, silent loss.

A subscription binds a topic to a set of member consumers and owns the
delivery state machine:

- a *fetch cursor* per partition (next offset to dispatch);
- an in-flight map per partition with per-message ack deadlines; an
  unacked message is redelivered after the deadline (at-least-once);
- a routing policy choosing a member per message (§2): ``RANDOM``,
  ``PARTITION`` (partitions assigned to members, Kafka-style), or
  ``KEY`` (hash of message key over current membership);
- optional dead-lettering after ``max_attempts`` (§3.3);
- **silent-loss accounting**: when the fetch cursor lands in a gap left
  by retention GC or compaction, the subscription simply skips ahead —
  the consumer receives no signal (§3.1).  The gap is tallied in
  ``lost_to_gc`` / ``lost_to_compaction`` so *experiments* can measure
  what the *application* cannot observe.

Routing deliberately knows nothing about any external auto-sharder:
"existing pubsub consumer affinity mechanisms based on the message key
or pubsub partition do not support independent, dynamic sharding of
loosely-coupled application consumers" (§3.1).  That mismatch is what
experiment E3 exploits to reproduce Figure 2.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.causal.buffer import CausalBuffer, CausalBufferConfig
from repro.obs.trace import hops, payload_version
from repro.pubsub.dlq import DeadLetterPolicy
from repro.pubsub.message import Message
from repro.pubsub.topic import Topic
from repro.sim.kernel import EventHandle, Simulation
from repro.sim.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.pubsub.consumer import Consumer


class RoutingPolicy(enum.Enum):
    """How a consumer group routes a message to a member (§2)."""

    RANDOM = "random"
    PARTITION = "partition"
    KEY = "key"


@dataclass
class SubscriptionConfig:
    """Delivery parameters."""

    routing: RoutingPolicy = RoutingPolicy.PARTITION
    max_inflight_per_partition: int = 64
    ack_timeout: float = 30.0
    delivery_latency: float = 0.001
    delivery_jitter: float = 0.0
    dead_letter: Optional[DeadLetterPolicy] = None
    #: Start consuming from the current end of the topic instead of 0.
    start_at_end: bool = False
    #: Deliver up to this many consecutive same-member messages as one
    #: ``Consumer.deliver_batch`` call (one delivery latency, one ack
    #: round-trip for the group).  1 (default) keeps the per-message
    #: delivery path bit-for-bit unchanged.  Redeliveries always go
    #: per-message: a batch that times out re-enters the single path.
    max_delivery_batch: int = 1
    #: ``"fifo"`` (default) is the classic per-partition order.
    #: ``"causal"`` routes fetched messages through a cross-partition
    #: :class:`~repro.causal.buffer.CausalBuffer`: a message whose
    #: in-band causal deps (``payload["causal"]``) have not been
    #: dispatched yet is held up to ``causal_hold`` seconds before the
    #: normal dispatch path sees it.  See docs/causal.md.
    delivery_mode: str = "fifo"
    #: Bounded-hold deadline (seconds) for causal mode.
    causal_hold: float = 0.25

    def __post_init__(self) -> None:
        if self.max_inflight_per_partition < 1:
            raise ValueError("max_inflight_per_partition must be >= 1")
        if self.ack_timeout <= 0:
            raise ValueError("ack_timeout must be positive")
        if self.delivery_latency < 0 or self.delivery_jitter < 0:
            raise ValueError("latency/jitter must be >= 0")
        if self.max_delivery_batch < 1:
            raise ValueError("max_delivery_batch must be >= 1")
        if self.delivery_mode not in ("fifo", "causal"):
            raise ValueError("delivery_mode must be 'fifo' or 'causal'")
        if self.delivery_mode == "causal" and self.max_delivery_batch != 1:
            raise ValueError(
                "causal delivery gates messages one at a time; "
                "combine it with max_delivery_batch=1"
            )
        if self.causal_hold <= 0:
            raise ValueError("causal_hold must be positive")


@dataclass(slots=True)
class _Inflight:
    message: Message
    member: str
    attempts: int
    deadline_handle: Optional[EventHandle] = None


@dataclass
class _PartitionState:
    fetch_offset: int = 0
    inflight: Dict[int, _Inflight] = field(default_factory=dict)
    acked: int = 0  # count of acked messages (not an offset)


def _stable_hash(key: str) -> int:
    return int.from_bytes(hashlib.md5(key.encode("utf-8")).digest()[:8], "big")


class Subscription:
    """Delivery state machine for one consumer group (or free consumer)."""

    def __init__(
        self,
        sim: Simulation,
        name: str,
        topic: Topic,
        config: SubscriptionConfig = SubscriptionConfig(),
        metrics: Optional[MetricsRegistry] = None,
        dlq_append: Optional[Callable[[Message], None]] = None,
        tracer=None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.topic = topic
        self.config = config
        self.metrics = metrics or MetricsRegistry()
        self._dlq_append = dlq_append
        self.tracer = tracer
        self._members: Dict[str, "Consumer"] = {}
        self._member_order: List[str] = []  # stable order for assignment
        self._partition_assignment: Dict[int, str] = {}
        self._state: Dict[int, _PartitionState] = {}
        for log in topic.partitions:
            start = log.next_offset if config.start_at_end else 0
            self._state[log.partition] = _PartitionState(fetch_offset=start)
        # silent-loss tallies (observable by experiments, not by members)
        self.lost_to_gc = 0
        self.lost_to_compaction = 0
        self.delivered = 0
        self.redelivered = 0
        self.acked = 0
        self.dead_lettered = 0
        self._pump_scheduled: Dict[int, bool] = {p: False for p in self._state}
        # causal mode: one buffer spanning every partition — exactly the
        # cross-partition ordering per-partition FIFO cannot give
        self.causal_buffer: Optional[CausalBuffer] = None
        if config.delivery_mode == "causal":
            self.causal_buffer = CausalBuffer(
                sim,
                CausalBufferConfig(hold_deadline=config.causal_hold),
                name=f"sub:{name}",
                tracer=tracer,
                component="broker",
            )

    # ------------------------------------------------------------------
    # membership

    def add_member(self, consumer: "Consumer") -> None:
        """Join a consumer to the group and rebalance."""
        if consumer.name in self._members:
            raise ValueError(f"member {consumer.name!r} already in {self.name!r}")
        self._members[consumer.name] = consumer
        self._member_order.append(consumer.name)
        self._rebalance()
        self.pump_all()

    def remove_member(self, name: str) -> None:
        """Remove a member; its in-flight messages redeliver on deadline."""
        if name not in self._members:
            return
        del self._members[name]
        self._member_order.remove(name)
        self._rebalance()
        self.pump_all()

    def members(self) -> List[str]:
        return list(self._member_order)

    def _rebalance(self) -> None:
        """Round-robin partitions over members (PARTITION routing)."""
        self._partition_assignment.clear()
        if not self._member_order:
            return
        for idx, partition in enumerate(sorted(self._state)):
            member = self._member_order[idx % len(self._member_order)]
            self._partition_assignment[partition] = member

    def _up_members(self) -> List[str]:
        return [m for m in self._member_order if self._members[m].up]

    # ------------------------------------------------------------------
    # routing

    def _route(self, message: Message) -> Optional[str]:
        """Pick the member for a message, or None if nobody can take it."""
        routing = self.config.routing
        if routing is RoutingPolicy.PARTITION:
            # fast path: the assigned member is up (the steady state) —
            # skip building the up-members list per message.  Identical
            # answers: the old code only consulted that list when the
            # assignment was missing or its member down.
            member = self._partition_assignment.get(message.partition)
            if member is not None and self._members[member].up:
                return member
            up = self._up_members()
            if not up:
                return None
            # assigned member down: realistic groups failover after a
            # rebalance; model that as deterministic fallback over up members
            return up[message.partition % len(up)]
        up = self._up_members()
        if not up:
            return None
        if routing is RoutingPolicy.KEY and message.key is not None:
            return up[_stable_hash(message.key) % len(up)]
        return up[self.sim.rng.randrange(len(up))]

    # ------------------------------------------------------------------
    # pumping

    def pump_all(self) -> None:
        """Schedule dispatch on every partition (cheap, idempotent)."""
        for partition in self._state:
            self.pump(partition)

    def pump(self, partition: int) -> None:
        if self._pump_scheduled.get(partition):
            return
        self._pump_scheduled[partition] = True
        self.sim.call_after(0.0, lambda: self._do_pump(partition))

    def _do_pump(self, partition: int) -> None:
        self._pump_scheduled[partition] = False
        state = self._state[partition]
        log = self.topic.partitions[partition]
        budget = self.config.max_inflight_per_partition - len(state.inflight)
        if budget <= 0 or not self._up_members():
            return
        messages = log.read_from(state.fetch_offset, limit=budget)
        if not messages and state.fetch_offset < log.gc_floor:
            # everything between the cursor and the floor is gone
            self._account_gap(state, log, log.gc_floor)
            state.fetch_offset = log.gc_floor
            return
        if self.config.max_delivery_batch > 1:
            self._pump_batched(partition, state, log, messages)
        else:
            # hoisted: the gate choice and dispatch target are loop
            # invariants — resolve them once per pump, not per message
            causal = self.causal_buffer
            submit = self._submit_causal if causal is not None else None
            dispatch = self._dispatch
            account_gap = self._account_gap
            for message in messages:
                offset = message.offset
                if offset > state.fetch_offset:
                    account_gap(state, log, offset)
                state.fetch_offset = offset + 1
                if submit is not None:
                    submit(partition, message)
                else:
                    dispatch(partition, message, attempts=1)
        if messages:
            # more may be waiting beyond the budget
            state_after = self._state[partition]
            if state_after.fetch_offset < log.next_offset and len(
                state_after.inflight
            ) < self.config.max_inflight_per_partition:
                self.pump(partition)

    def _pump_batched(
        self, partition: int, state: _PartitionState, log, messages: List[Message]
    ) -> None:
        """Dispatch a pump's messages as same-member groups.

        Consecutive messages routed to the same member coalesce (up to
        ``max_delivery_batch``) into one delivery; a member change or a
        full group flushes.  Gap accounting is identical to the single
        path.  A message nobody can take falls back to ``_dispatch``,
        which parks it for the redelivery wheel.
        """
        group: List[Message] = []
        group_member: Optional[str] = None
        for message in messages:
            if message.offset > state.fetch_offset:
                self._account_gap(state, log, message.offset)
            state.fetch_offset = message.offset + 1
            member = self._route(message)
            if member is None:
                self._dispatch_group(partition, group, group_member)
                group, group_member = [], None
                self._dispatch(partition, message, attempts=1)
                continue
            if group and (
                member != group_member
                or len(group) >= self.config.max_delivery_batch
            ):
                self._dispatch_group(partition, group, group_member)
                group = []
            group_member = member
            group.append(message)
        self._dispatch_group(partition, group, group_member)

    def _submit_causal(self, partition: int, message: Message) -> None:
        """Gate one fetched message through the causal buffer.

        Redeliveries never come back through here — they already passed
        the gate once; the redelivery wheel re-enters ``_dispatch``
        directly, so at-least-once semantics are untouched.
        """
        payload = message.payload
        version = payload_version(payload)
        if version is None:
            # no in-band identity: nothing to order on, pass through
            self._dispatch(partition, message, attempts=1)
            return
        stamp = payload.get("causal") if isinstance(payload, dict) else None
        self.causal_buffer.submit(
            message.key, version, stamp,
            lambda: self._dispatch(partition, message, attempts=1),
        )

    def _account_gap(self, state: _PartitionState, log, next_present: int) -> None:
        """Attribute skipped offsets to GC or compaction — silently."""
        gap = next_present - state.fetch_offset
        if gap <= 0:
            return
        below_floor = max(0, min(next_present, log.gc_floor) - state.fetch_offset)
        self.lost_to_gc += below_floor
        self.lost_to_compaction += gap - below_floor
        self.metrics.counter(f"pubsub.sub.{self.name}.lost").inc(gap)
        if self.tracer is not None:
            # identity-less: the messages are gone, so the TraceIndex
            # recovers (key, version) from its pubsub.append offset map
            self.tracer.record(
                hops.PUBSUB_GAP, "broker",
                subscription=self.name, topic=log.topic,
                partition=log.partition,
                from_offset=state.fetch_offset, to_offset=next_present,
                gc_floor=log.gc_floor,
            )

    def _dispatch(self, partition: int, message: Message, attempts: int) -> None:
        state = self._state[partition]
        member = self._route(message)
        if member is None:
            # nobody up; leave for redelivery wheel
            inflight = _Inflight(message=message, member="", attempts=attempts)
            state.inflight[message.offset] = inflight
            self._arm_deadline(partition, inflight)
            return
        inflight = _Inflight(message=message, member=member, attempts=attempts)
        state.inflight[message.offset] = inflight
        self._arm_deadline(partition, inflight)
        config = self.config
        delay = config.delivery_latency
        if config.delivery_jitter > 0:
            delay += self.sim.rng.random() * config.delivery_jitter
        consumer = self._members[member]
        self.delivered += 1
        if attempts > 1:
            self.redelivered += 1
        if self.tracer is not None:
            self.tracer.record(
                hops.PUBSUB_DELIVER, "broker",
                key=message.key, version=payload_version(message.payload),
                subscription=self.name, member=member,
                partition=partition, offset=message.offset, attempts=attempts,
            )
        self.sim.call_after(
            delay,
            lambda: consumer.deliver(
                message,
                ack=lambda: self.ack(partition, message.offset),
                nack=lambda: self.nack(partition, message.offset),
            ),
        )

    def _dispatch_group(
        self, partition: int, messages: List[Message], member: Optional[str]
    ) -> None:
        """Deliver a same-member group as one ``deliver_batch`` call.

        Per-message state is unchanged — each message gets its own
        in-flight entry and ack deadline, so a crashed consumer's
        unacked batch redelivers message by message — but the group
        shares one delivery latency draw and one ack round-trip.
        """
        if not messages:
            return
        assert member is not None
        state = self._state[partition]
        consumer = self._members[member]
        for message in messages:
            inflight = _Inflight(message=message, member=member, attempts=1)
            state.inflight[message.offset] = inflight
            self._arm_deadline(partition, inflight)
            self.delivered += 1
            if self.tracer is not None:
                self.tracer.record(
                    hops.PUBSUB_DELIVER, "broker",
                    key=message.key, version=payload_version(message.payload),
                    subscription=self.name, member=member,
                    partition=partition, offset=message.offset, attempts=1,
                    n_events=len(messages),
                )
        delay = self.config.delivery_latency
        if self.config.delivery_jitter > 0:
            delay += self.sim.rng.random() * self.config.delivery_jitter
        batch = list(messages)
        offsets = [message.offset for message in messages]
        self.sim.call_after(
            delay,
            lambda: consumer.deliver_batch(
                batch,
                ack=lambda: self.ack_batch(partition, offsets),
                nack=lambda: self.nack_batch(partition, offsets),
            ),
        )

    def _arm_deadline(self, partition: int, inflight: _Inflight) -> None:
        offset = inflight.message.offset
        inflight.deadline_handle = self.sim.call_after(
            self.config.ack_timeout,
            lambda: self._on_deadline(partition, offset),
        )

    def _on_deadline(self, partition: int, offset: int) -> None:
        state = self._state[partition]
        inflight = state.inflight.get(offset)
        if inflight is None:
            return  # already acked
        del state.inflight[offset]
        if self._maybe_dead_letter(partition, inflight):
            return
        self._dispatch(partition, inflight.message, attempts=inflight.attempts + 1)

    def _maybe_dead_letter(self, partition: int, inflight: _Inflight) -> bool:
        """Route to the DLQ when attempts are exhausted; True if routed."""
        dl = self.config.dead_letter
        if dl is None or inflight.attempts < dl.max_attempts:
            return False
        self.dead_lettered += 1
        if self._dlq_append is not None:
            self._dlq_append(inflight.message)
        self.pump(partition)
        return True

    # ------------------------------------------------------------------
    # acks

    def ack(self, partition: int, offset: int) -> None:
        """Acknowledge one delivery; frees an in-flight slot."""
        if self._ack_one(partition, offset):
            self.pump(partition)

    def _ack_one(self, partition: int, offset: int) -> bool:
        state = self._state[partition]
        inflight = state.inflight.pop(offset, None)
        if inflight is None:
            return False  # late ack after redelivery/dead-letter: ignore
        if inflight.deadline_handle is not None:
            inflight.deadline_handle.cancel()
        state.acked += 1
        self.acked += 1
        if self.tracer is not None:
            message = inflight.message
            self.tracer.record(
                hops.PUBSUB_ACK, "broker",
                key=message.key, version=payload_version(message.payload),
                subscription=self.name, partition=partition, offset=offset,
            )
        return True

    def ack_batch(self, partition: int, offsets: List[int]) -> None:
        """Acknowledge a delivered group, then pump **once** — the batch
        counterpart of N ``ack`` calls each scheduling its own pump."""
        any_acked = False
        for offset in offsets:
            any_acked |= self._ack_one(partition, offset)
        if any_acked:
            self.pump(partition)

    def nack_batch(self, partition: int, offsets: List[int]) -> None:
        """Negative-ack a delivered group; each message redelivers (or
        dead-letters) individually through the single-message path."""
        for offset in offsets:
            self.nack(partition, offset)

    def nack(self, partition: int, offset: int) -> None:
        """Negative ack: redeliver promptly instead of waiting (or
        dead-letter once attempts are exhausted)."""
        state = self._state[partition]
        inflight = state.inflight.pop(offset, None)
        if inflight is None:
            return
        if inflight.deadline_handle is not None:
            inflight.deadline_handle.cancel()
        if self.tracer is not None:
            message = inflight.message
            self.tracer.record(
                hops.PUBSUB_NACK, "broker",
                key=message.key, version=payload_version(message.payload),
                subscription=self.name, partition=partition, offset=offset,
                attempts=inflight.attempts,
            )
        if self._maybe_dead_letter(partition, inflight):
            return
        self._dispatch(partition, inflight.message, attempts=inflight.attempts + 1)

    # ------------------------------------------------------------------
    # introspection

    def backlog(self, partition: Optional[int] = None) -> int:
        """Messages published but not yet acked by this subscription.

        This is what the paper means by a consumer's backlog: everything
        between the group's progress and the head of the topic,
        *including* messages GC already deleted (the group does not know
        they are gone).
        """
        partitions = [partition] if partition is not None else list(self._state)
        total = 0
        for p in partitions:
            state = self._state[p]
            log = self.topic.partitions[p]
            total += (log.next_offset - state.fetch_offset) + len(state.inflight)
        return total

    def inflight_count(self) -> int:
        return sum(len(s.inflight) for s in self._state.values())

    def seek(self, partition: int, offset: int) -> None:
        """Move the fetch cursor (replay support, §3.3).  In-flight
        deliveries are dropped; deliveries restart from ``offset``."""
        state = self._state[partition]
        for inflight in state.inflight.values():
            if inflight.deadline_handle is not None:
                inflight.deadline_handle.cancel()
        state.inflight.clear()
        state.fetch_offset = offset
        self.pump(partition)
