"""The broker: topics, publishing, subscriptions, background GC.

The broker is the control plane of the pubsub baseline: it owns topics,
fans published messages out to subscriptions, and runs the periodic
retention-GC and compaction sweeps whose silent deletions are the crux
of §3.1.  It also aggregates the hard-state accounting (bytes appended
to partition logs) used by the §4.4 efficiency experiment: every byte
written here is a *second* durable copy of data the producer store
already persisted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.pubsub.consumer import Consumer, ConsumerGroup, FreeConsumer
from repro.pubsub.dlq import DeadLetterPolicy
from repro.pubsub.errors import PubsubError, UnknownTopicError
from repro.pubsub.log import CompactionPolicy, RetentionPolicy
from repro.pubsub.message import Message
from repro.obs.trace import hops, payload_version
from repro.pubsub.subscription import RoutingPolicy, Subscription, SubscriptionConfig
from repro.pubsub.topic import Topic
from repro.resilience.channel import ChannelConfig, ReliableChannel
from repro.sim.kernel import Simulation
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Network


@dataclass
class BrokerConfig:
    """Broker-wide parameters."""

    gc_interval: float = 60.0
    compaction_interval: float = 300.0
    publish_latency: float = 0.0005

    def __post_init__(self) -> None:
        if self.gc_interval <= 0 or self.compaction_interval <= 0:
            raise ValueError("sweep intervals must be positive")
        if self.publish_latency < 0:
            raise ValueError("publish_latency must be >= 0")


class Broker:
    """In-process pubsub broker running on the simulation kernel."""

    def __init__(
        self,
        sim: Simulation,
        config: BrokerConfig = BrokerConfig(),
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer
        self._topics: Dict[str, Topic] = {}
        self._subscriptions: Dict[str, List[Subscription]] = {}
        self._sweeps_started = False
        self._channel: Optional[ReliableChannel] = None
        # prebound: one registry lookup at construction instead of one
        # dict probe per publish on the hot path
        self._published = self.metrics.counter("pubsub.published")

    # ------------------------------------------------------------------
    # network attachment (resilience layer)

    def attach_network(
        self,
        net: Network,
        endpoint: str = "broker",
        config: Optional[ChannelConfig] = None,
    ) -> ReliableChannel:
        """Expose the publish API as a network endpoint.

        Remote producers (:class:`RemotePublisher`) publish across the
        simulated network instead of calling :meth:`publish` directly —
        the hop where loss, partitions, and broker downtime bite.  The
        broker-side channel dedups retransmitted publishes (per-sender
        sequence numbers), so reliable producers get exactly-once
        appends even though the wire is at-least-once.
        """
        if self._channel is not None:
            raise PubsubError("broker already attached to a network")

        def handle(src: str, command: Any) -> None:
            records = command.get("records")
            if records is not None:
                self.publish_batch(command["topic"], records)
            else:
                self.publish(command["topic"], command["key"], command["payload"])

        self._channel = ReliableChannel(
            self.sim, net, endpoint, handler=handle,
            config=config, metrics=self.metrics,
        )
        return self._channel

    # ------------------------------------------------------------------
    # topics

    def create_topic(
        self,
        name: str,
        num_partitions: int = 1,
        retention: RetentionPolicy = RetentionPolicy(),
        compaction: Optional[CompactionPolicy] = None,
    ) -> Topic:
        """Create a topic; starts background sweeps on first topic."""
        if name in self._topics:
            raise PubsubError(f"topic {name!r} already exists")
        topic = Topic(
            name,
            num_partitions=num_partitions,
            retention=retention,
            compaction=compaction,
            clock=self.sim.now,
        )
        self._topics[name] = topic
        self._subscriptions[name] = []
        if not self._sweeps_started:
            self._sweeps_started = True
            self.sim.call_after(self.config.gc_interval, self._gc_sweep)
            self.sim.call_after(self.config.compaction_interval, self._compaction_sweep)
        return topic

    def topic(self, name: str) -> Topic:
        topic = self._topics.get(name)
        if topic is None:
            raise UnknownTopicError(name)
        return topic

    def topics(self) -> List[str]:
        return sorted(self._topics)

    # ------------------------------------------------------------------
    # publishing

    def publish(self, topic_name: str, key: Optional[str], payload: Any) -> Message:
        """Append to the topic and wake subscriptions after the publish
        latency.  Returns the stored message (offset assigned)."""
        topic = self.topic(topic_name)
        message = topic.append(key, payload)
        self._published.inc()
        if self.tracer is not None:
            self.tracer.record(
                hops.PUBSUB_APPEND, "broker",
                key=key, version=payload_version(payload),
                topic=topic_name, partition=message.partition,
                offset=message.offset,
            )

        def wake() -> None:
            for subscription in self._subscriptions[topic_name]:
                subscription.pump(message.partition)

        if self.config.publish_latency > 0:
            self.sim.call_after(self.config.publish_latency, wake)
        else:
            wake()
        return message

    def publish_batch(
        self, topic_name: str, records: List[Any]
    ) -> List[Message]:
        """Append a group of ``(key, payload)`` records atomically
        adjacent and wake subscriptions **once** per touched partition.

        The group-commit counterpart of :meth:`publish`: a transaction's
        records land as consecutive offsets (per partition) with a single
        wake instead of one publish latency + pump per record.
        """
        topic = self.topic(topic_name)
        messages: List[Message] = []
        for key, payload in records:
            message = topic.append(key, payload)
            messages.append(message)
            if self.tracer is not None:
                self.tracer.record(
                    hops.PUBSUB_APPEND, "broker",
                    key=key, version=payload_version(payload),
                    topic=topic_name, partition=message.partition,
                    offset=message.offset, n_events=len(records),
                )
        self._published.inc(len(messages))
        partitions = sorted({message.partition for message in messages})

        def wake() -> None:
            for subscription in self._subscriptions[topic_name]:
                for partition in partitions:
                    subscription.pump(partition)

        if self.config.publish_latency > 0:
            self.sim.call_after(self.config.publish_latency, wake)
        else:
            wake()
        return messages

    # ------------------------------------------------------------------
    # subscriptions

    def subscribe(
        self,
        topic_name: str,
        subscription_name: str,
        config: Optional[SubscriptionConfig] = None,
    ) -> Subscription:
        """Create a subscription on a topic."""
        topic = self.topic(topic_name)
        config = config or SubscriptionConfig()
        dlq_append = None
        if config.dead_letter is not None:
            dlq_topic_name = config.dead_letter.dlq_topic
            if dlq_topic_name not in self._topics:
                self.create_topic(dlq_topic_name)

            def dlq_append(message: Message, _name: str = dlq_topic_name) -> None:
                self.publish(_name, message.key, message.payload)
                self.metrics.counter("pubsub.dead_lettered").inc()

        subscription = Subscription(
            self.sim,
            subscription_name,
            topic,
            config=config,
            metrics=self.metrics,
            dlq_append=dlq_append,
            tracer=self.tracer,
        )
        self._subscriptions[topic_name].append(subscription)
        return subscription

    def consumer_group(
        self,
        topic_name: str,
        group_name: str,
        config: Optional[SubscriptionConfig] = None,
    ) -> ConsumerGroup:
        """Create a consumer-group subscription wrapper."""
        return ConsumerGroup(self.subscribe(topic_name, group_name, config))

    def free_consumer(
        self,
        topic_name: str,
        consumer: Consumer,
        config: Optional[SubscriptionConfig] = None,
    ) -> FreeConsumer:
        """Attach ``consumer`` as a free consumer: it gets every message
        of the topic on a dedicated subscription."""
        config = config or SubscriptionConfig(routing=RoutingPolicy.RANDOM)
        subscription = self.subscribe(topic_name, f"free:{consumer.name}", config)
        return FreeConsumer(subscription, consumer)

    def subscriptions(self, topic_name: str) -> List[Subscription]:
        return list(self._subscriptions.get(topic_name, ()))

    # ------------------------------------------------------------------
    # background sweeps

    def _gc_sweep(self) -> None:
        deleted = sum(topic.run_gc() for topic in self._topics.values())
        if deleted:
            self.metrics.counter("pubsub.gc.deleted").inc(deleted)
        self.sim.call_after(self.config.gc_interval, self._gc_sweep)

    def _compaction_sweep(self) -> None:
        deleted = sum(topic.run_compaction() for topic in self._topics.values())
        if deleted:
            self.metrics.counter("pubsub.compaction.deleted").inc(deleted)
        self.sim.call_after(self.config.compaction_interval, self._compaction_sweep)

    # ------------------------------------------------------------------
    # accounting

    @property
    def hard_state_bytes(self) -> int:
        """Durable bytes appended across all topics (§4.4 efficiency)."""
        return sum(topic.bytes_written for topic in self._topics.values())

    def total_backlog(self) -> int:
        """Sum of backlogs across all subscriptions of all topics."""
        return sum(
            subscription.backlog()
            for subs in self._subscriptions.values()
            for subscription in subs
        )


class RemotePublisher:
    """Producer-side handle that publishes to a broker over the network.

    The resilient counterpart of calling ``broker.publish`` directly:
    publish commands travel through a :class:`ReliableChannel` to the
    endpoint created by :meth:`Broker.attach_network`.  With a reliable
    channel config a publish survives loss, partition windows, and
    broker downtime (retransmitted until acked); with
    ``ChannelConfig(reliable=False)`` it is the paper's fire-and-forget
    baseline, and ``lost`` counts publishes the policy abandoned.
    """

    def __init__(
        self,
        sim: Simulation,
        net: Network,
        name: str,
        broker_endpoint: str = "broker",
        config: Optional[ChannelConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> None:
        self.sim = sim
        self.broker_endpoint = broker_endpoint
        self.tracer = tracer if tracer is not None else net.tracer
        self.channel = ReliableChannel(
            sim, net, name, config=config, metrics=metrics, tracer=tracer
        )
        self.published = 0
        self.delivered = 0
        self.lost = 0

    def publish(self, topic: str, key: Optional[str], payload: Any) -> None:
        """Ship one publish command across the network."""
        self.published += 1
        version = payload_version(payload)

        def delivered() -> None:
            self.delivered += 1
            if self.tracer is not None:
                self.tracer.record(
                    hops.PUBLISH_ACKED, self.channel.name,
                    key=key, version=version, seq=seq,
                )

        def gaveup() -> None:
            self.lost += 1
            if self.tracer is not None:
                self.tracer.record(
                    hops.PUBLISH_GAVEUP, self.channel.name,
                    key=key, version=version, seq=seq,
                )

        seq = self.channel.send(
            self.broker_endpoint,
            {"topic": topic, "key": key, "payload": payload},
            on_delivered=delivered,
            on_giveup=gaveup,
        )
        if self.tracer is not None:
            self.tracer.record(
                hops.PUBLISH_SEND, self.channel.name,
                key=key, version=version,
                channel=self.channel.name, dst=self.broker_endpoint,
                seq=seq, topic=topic,
            )

    def publish_batch(self, topic: str, records: List[Any]) -> None:
        """Ship a group of ``(key, payload)`` records as ONE publish
        command — one channel frame, one ack, one retransmit unit.

        Every record's ``publish.send`` hop carries the frame's shared
        seq, so losing the frame attributes the loss to each record.
        """
        records = list(records)
        self.published += len(records)

        def delivered() -> None:
            self.delivered += len(records)
            if self.tracer is not None:
                for key, payload in records:
                    self.tracer.record(
                        hops.PUBLISH_ACKED, self.channel.name,
                        key=key, version=payload_version(payload), seq=seq,
                    )

        def gaveup() -> None:
            self.lost += len(records)
            if self.tracer is not None:
                for key, payload in records:
                    self.tracer.record(
                        hops.PUBLISH_GAVEUP, self.channel.name,
                        key=key, version=payload_version(payload), seq=seq,
                    )

        seq = self.channel.send(
            self.broker_endpoint,
            {"topic": topic, "records": records},
            on_delivered=delivered,
            on_giveup=gaveup,
        )
        if self.tracer is not None:
            for key, payload in records:
                self.tracer.record(
                    hops.PUBLISH_SEND, self.channel.name,
                    key=key, version=payload_version(payload),
                    channel=self.channel.name, dst=self.broker_endpoint,
                    seq=seq, topic=topic, n_events=len(records),
                )

    # Failable protocol: a crashed publisher stops transmitting but
    # keeps its unacked frames; recovery re-kicks them.
    def crash(self) -> None:
        self.channel.crash()

    def recover(self) -> None:
        self.channel.recover()
