"""Pubsub-layer exceptions."""

from __future__ import annotations


class PubsubError(RuntimeError):
    """Base class for pubsub errors."""


class UnknownTopicError(PubsubError):
    """Publish or subscribe against a topic that does not exist."""

    def __init__(self, topic: str) -> None:
        super().__init__(f"unknown topic {topic!r}")
        self.topic = topic


class OffsetOutOfRangeError(PubsubError):
    """A reader asked for an offset below the log's GC floor.

    Note the asymmetry the paper highlights: this error surfaces only on
    explicit offset reads (replay/seek, §3.3).  The normal consumer path
    silently skips GC'd messages, because that is what deployed systems
    do — the consumer is never told (§3.1).
    """

    def __init__(self, requested: int, floor: int) -> None:
        super().__init__(f"offset {requested} below GC floor {floor}")
        self.requested = requested
        self.floor = floor
