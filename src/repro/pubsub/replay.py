"""Replay / seek: pubsub's "ad hoc storage API" (§3.3).

Modeled on GCP Pub/Sub's "replay and snapshot": a subscription can seek
to an offset, to a timestamp, or to a previously created subscription
snapshot.  The limitations the paper notes are visible in the API
itself:

- seeks below the GC floor fail (:class:`OffsetOutOfRangeError`) — the
  state needed may simply be gone;
- a "snapshot" here is only a *vector of cursor offsets*, not data:
  replaying it redelivers whatever messages still exist, which drifts
  from what existed when the snapshot was taken.

Contrast with the explicit store, where a snapshot is actual versioned
state (``repro.storage.snapshot``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.pubsub.errors import OffsetOutOfRangeError
from repro.pubsub.subscription import Subscription
from repro.pubsub.topic import Topic


class SeekTarget(enum.Enum):
    OFFSET = "offset"
    TIMESTAMP = "timestamp"
    SNAPSHOT = "snapshot"


@dataclass(frozen=True)
class SubscriptionSnapshot:
    """Cursor offsets of a subscription at creation time.

    Note what is *not* here: the messages.  If GC runs between snapshot
    and replay, the replay silently covers less history.
    """

    name: str
    topic: str
    created_at: float
    offsets: Dict[int, int]


def create_snapshot(name: str, subscription: Subscription, now: float) -> SubscriptionSnapshot:
    """Capture the subscription's current cursor positions."""
    offsets = {
        partition: subscription._state[partition].fetch_offset
        for partition in subscription._state
    }
    return SubscriptionSnapshot(
        name=name, topic=subscription.topic.name, created_at=now, offsets=offsets
    )


def seek_to_snapshot(subscription: Subscription, snapshot: SubscriptionSnapshot) -> None:
    """Rewind the subscription to the snapshot's offsets.

    Raises :class:`OffsetOutOfRangeError` if any snapshot offset has
    been garbage-collected — replay cannot reconstruct deleted history.
    """
    if snapshot.topic != subscription.topic.name:
        raise ValueError(
            f"snapshot is for topic {snapshot.topic!r}, "
            f"subscription is on {subscription.topic.name!r}"
        )
    for partition, offset in snapshot.offsets.items():
        floor = subscription.topic.partitions[partition].gc_floor
        if offset < floor:
            raise OffsetOutOfRangeError(offset, floor)
    for partition, offset in snapshot.offsets.items():
        subscription.seek(partition, offset)


def seek_to_timestamp(subscription: Subscription, t: float) -> None:
    """Move every partition cursor to the first message at/after ``t``.

    Messages published before ``t`` but already GC'd cannot be
    recovered; like real systems, the seek lands on whatever remains.
    """
    for log in subscription.topic.partitions:
        subscription.seek(log.partition, log.offset_for_time(t))


def seek_to_offset(subscription: Subscription, partition: int, offset: int) -> None:
    """Explicit offset seek; raises below the GC floor."""
    floor = subscription.topic.partitions[partition].gc_floor
    if offset < floor:
        raise OffsetOutOfRangeError(offset, floor)
    subscription.seek(partition, offset)
