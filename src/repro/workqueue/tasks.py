"""Task model shared by both work-queue implementations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.metrics import Histogram


@dataclass(frozen=True)
class Task:
    """One unit of keyed work.

    ``key`` identifies the entity the task concerns (affinity target);
    ``work`` is the base processing time; ``poison`` marks the
    pathological tasks used by head-of-line experiments.
    """

    task_id: int
    key: str
    work: float
    enqueued_at: float
    poison: bool = False

    def payload(self) -> Dict[str, object]:
        """Encode for a pubsub message or a store row."""
        return {
            "task_id": self.task_id,
            "key": self.key,
            "work": self.work,
            "enqueued_at": self.enqueued_at,
            "poison": self.poison,
            "state": "pending",
        }

    @staticmethod
    def from_payload(payload: Dict[str, object]) -> "Task":
        return Task(
            task_id=int(payload["task_id"]),  # type: ignore[arg-type]
            key=str(payload["key"]),
            work=float(payload["work"]),  # type: ignore[arg-type]
            enqueued_at=float(payload["enqueued_at"]),  # type: ignore[arg-type]
            poison=bool(payload["poison"]),
        )


class TaskStats:
    """Completion accounting shared by the worker pools."""

    def __init__(self) -> None:
        self.completed = 0
        self.completed_poison = 0
        self.warm_hits = 0
        self.cold_misses = 0
        self.latency = Histogram("task.latency")
        self.normal_latency = Histogram("task.latency.normal")

    def record(self, task: Task, completed_at: float, warm: bool) -> None:
        self.completed += 1
        if task.poison:
            self.completed_poison += 1
        if warm:
            self.warm_hits += 1
        else:
            self.cold_misses += 1
        elapsed = completed_at - task.enqueued_at
        self.latency.observe(elapsed)
        if not task.poison:
            self.normal_latency.observe(elapsed)

    @property
    def warm_fraction(self) -> float:
        total = self.warm_hits + self.cold_misses
        return self.warm_hits / total if total else 0.0
