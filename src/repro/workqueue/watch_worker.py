"""Watch-based work queue: tasks as rows, workers as range watchers.

The §4.3 reframing: "applications use an auto-sharding system to
dynamically assign and replicate ranges of keys to workers based on
load and health.  Each worker initially queries the database for
assigned entities requiring attention, and then uses watch to identify
other such entities.  The application can then prioritize entities,
fully mitigating head-of-line blocking problems."

Task rows are keyed ``<entity-key>/<task-id>`` so range assignment is
entity-affine.  Each worker materializes its ranges with linked caches
(snapshot + watch + resync), picks its next task *by its own policy*
(non-poison first when prioritization is on — the HoL mitigation), and
completes tasks with a conditional store transaction, which makes
at-least-once reprocessing after worker churn harmless.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro._types import Key, KeyRange
from repro.core.linked_cache import LinkedCache, LinkedCacheConfig
from repro.obs.trace import hops
from repro.resilience.retry import RetryPolicy
from repro.sharding.assignment import Assignment
from repro.sharding.autosharder import AutoSharder
from repro.sim.kernel import Simulation, Timeout
from repro.sim.metrics import MetricsRegistry
from repro.storage.errors import ConflictError
from repro.storage.kv import MVCCStore
from repro.workqueue.state_cache import StateCache
from repro.workqueue.tasks import Task, TaskStats


def task_row_key(task: Task) -> Key:
    """Store key for a task row (entity-prefixed for affinity)."""
    return f"{task.key}/{task.task_id:010d}"


class WatchWorker:
    """One worker: owned ranges, pending view, serial work loop."""

    def __init__(
        self,
        sim: Simulation,
        name: str,
        pool: "WatchWorkerPool",
    ) -> None:
        self.sim = sim
        self.name = name
        self.pool = pool
        self.state_cache = StateCache(pool.cache_capacity)
        self._caches: Dict[KeyRange, LinkedCache] = {}
        self._owned_generation = -1
        self._skip: set[Key] = set()  # completed locally, event in flight
        self.up = True
        sim.spawn(self._work_loop(), name=f"watchworker-{name}")

    # ------------------------------------------------------------------
    # sharder listener

    def on_assignment(self, assignment: Assignment) -> None:
        if assignment.generation <= self._owned_generation:
            return
        self._owned_generation = assignment.generation
        new_ranges = set(assignment.ranges_of(self.name))
        for key_range in list(self._caches):
            if key_range not in new_ranges:
                self._caches.pop(key_range).stop()
        for key_range in new_ranges:
            if key_range not in self._caches:
                cache = LinkedCache(
                    self.sim,
                    self.pool.watchable,
                    self.pool.snapshot_fn,
                    key_range,
                    config=LinkedCacheConfig(snapshot_latency=0.02),
                    name=f"{self.name}:{key_range}",
                )
                self._caches[key_range] = cache
                cache.start()
        self.state_cache.drop_outside(
            lambda key: any(r.contains(key) for r in new_ranges)
        )

    # ------------------------------------------------------------------
    # work loop

    def _work_loop(self):
        while True:
            if not self.up:
                yield Timeout(0.05)
                continue
            picked = self._pick()
            if picked is None:
                yield Timeout(self.pool.idle_poll)
                continue
            row_key, task = picked
            warm = self.state_cache.touch(task.key)
            cost = task.work if warm else task.work + self.pool.cold_penalty
            # report load so the auto-sharder can split/move hot ranges
            # (the Slicer feedback loop, §4.3)
            self.pool.sharder.record_load(row_key, weight=cost)
            yield Timeout(cost)
            if not self.up:
                continue  # crashed mid-task: no completion write
            outcome = self._complete(row_key)
            # a commit conflict is transient (another writer touched the
            # row); with a retry policy we back off and re-attempt the
            # conditional write instead of abandoning work already done
            policy = self.pool.complete_retry
            attempt = 1
            started = self.sim.now()
            while (
                outcome == "conflict"
                and policy is not None
                and policy.allows(attempt + 1, started, self.sim.now())
            ):
                yield Timeout(policy.backoff(attempt, self.sim.rng))
                if not self.up:
                    break
                attempt += 1
                self.pool.metrics.counter(
                    "resilience.workqueue.complete_retries"
                ).inc()
                outcome = self._complete(row_key)
            if outcome == "done":
                self.pool.stats.record(task, self.sim.now(), warm)
                if self.pool.tracer is not None:
                    self.pool.tracer.record(
                        hops.TASK_COMPLETE, self.name,
                        key=task.key, version=task.task_id, worker=self.name,
                    )

    def _pick(self) -> Optional[Tuple[Key, Task]]:
        """Choose the next pending task in our ranges, by policy."""
        best: Optional[Tuple[Tuple, Key, Task]] = None
        for cache in self._caches.values():
            if not cache.available:
                continue
            for row_key, payload in cache.data.items_latest(cache.key_range).items():
                if payload.get("state") != "pending" or row_key in self._skip:
                    continue
                task = Task.from_payload(payload)
                if self.pool.prioritize:
                    rank = (1 if task.poison else 0, task.enqueued_at)
                else:
                    rank = (task.enqueued_at,)
                if best is None or rank < best[0]:
                    best = (rank, row_key, task)
        if best is None:
            return None
        return (best[1], best[2])

    def _complete(self, row_key: Key) -> str:
        """Conditional completion write.

        Returns ``"done"`` (we committed it), ``"taken"`` (someone else
        already completed it — not retryable), or ``"conflict"`` (the
        commit raced another writer — retryable)."""
        self._skip.add(row_key)
        txn = self.pool.store.transaction()
        row = txn.get(row_key)
        if row is None or row.get("state") != "pending":
            txn.abort()
            return "taken"
        done = dict(row)
        done["state"] = "done"
        txn.put(row_key, done)
        try:
            txn.commit()
        except ConflictError:
            self.pool.conflicts += 1
            return "conflict"
        return "done"

    # ------------------------------------------------------------------
    # failure model

    def crash(self) -> None:
        self.up = False
        for cache in self._caches.values():
            cache.stop()
        self._caches.clear()

    def recover(self) -> None:
        self.up = True
        self._owned_generation = -1  # take whatever the next notify says


class WatchWorkerPool:
    """Auto-sharded fleet of watch workers over a task store."""

    def __init__(
        self,
        sim: Simulation,
        store: MVCCStore,
        watchable,
        sharder: AutoSharder,
        num_workers: int = 4,
        cold_penalty: float = 0.02,
        cache_capacity: int = 256,
        prioritize: bool = True,
        idle_poll: float = 0.02,
        complete_retry: Optional[RetryPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> None:
        self.sim = sim
        self.store = store
        self.watchable = watchable
        self.sharder = sharder
        self.cold_penalty = cold_penalty
        self.cache_capacity = cache_capacity
        self.prioritize = prioritize
        self.idle_poll = idle_poll
        #: backoff schedule for retrying completion-write conflicts;
        #: None keeps the legacy abandon-on-conflict behaviour (the task
        #: is redone from scratch by whoever picks it next)
        self.complete_retry = complete_retry
        self.metrics = metrics or MetricsRegistry()
        #: tasks are traced as (key=entity key, version=task_id) chains
        self.tracer = tracer
        self.stats = TaskStats()
        self.conflicts = 0
        self.workers: Dict[str, WatchWorker] = {}
        for idx in range(num_workers):
            name = f"worker-{idx}"
            worker = WatchWorker(sim, name, self)
            self.workers[name] = worker
            sharder.subscribe(worker.on_assignment)

    def snapshot_fn(self, key_range: KeyRange):
        version = self.store.last_version
        return version, dict(self.store.scan(key_range, version))

    # ------------------------------------------------------------------
    # driving

    def submit(self, task: Task) -> None:
        """Write the task row; watchers pick it up."""
        if self.tracer is not None:
            self.tracer.record(
                hops.TASK_ENQUEUE, "workqueue",
                key=task.key, version=task.task_id, row=task_row_key(task),
            )
        self.store.put(task_row_key(task), task.payload())

    def crash_worker(self, name: str) -> None:
        """Fail a worker and tell the sharder to reassign its ranges."""
        self.workers[name].crash()
        self.sharder.remove_node(name)

    def add_worker(self, name: str) -> WatchWorker:
        worker = WatchWorker(self.sim, name, self)
        self.workers[name] = worker
        self.sharder.subscribe(worker.on_assignment)
        self.sharder.add_node(name)
        return worker

    # ------------------------------------------------------------------
    # introspection

    @property
    def completed(self) -> int:
        return self.stats.completed

    def pending_in_store(self) -> int:
        """Ground truth: pending rows in the store right now."""
        return sum(
            1 for _, payload in self.store.scan() if payload.get("state") == "pending"
        )
