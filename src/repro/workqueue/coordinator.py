"""VM provisioning: event-driven coordination vs watch reconciliation.

The paper's closing §4.3 example.  The world is two stores:

- *desired*: ``workload/<id> -> {"replicas": n}``;
- *actual*: ``vm/<id> -> {"alive": bool, "workload": id | None}``.

Goal: every workload has ``replicas`` live VMs assigned.  Both
coordinators may only act through conditional store transactions, so
neither can corrupt state — the comparison is about *wasted and
misdirected actions* and *convergence time* under churn.

:class:`EventDrivenCoordinator` (the pubsub pattern): workload-change
events arrive through a pubsub topic and become queued tasks; free-VM
knowledge comes from a periodically polled snapshot.  "The event-based
approach introduces complexity because the state of the world ...
changes constantly and in general does not match the state when the
work event was enqueued": tasks act on stale payloads and stale VM
lists, so they pick dead or already-taken VMs (aborted transactions,
counted), and VM deaths that arrive eventless (or whose repair event
was processed before the replacement existed) leave deficits until some
later event happens to touch the workload.  A slow "full resync" sweep
(the operational fallback real systems bolt on) eventually repairs.

:class:`WatchReconciler`: linked caches over both stores; on every
change (and a fast periodic tick) it recomputes the diff against the
*current* state and acts.  Actions are validated against fresh state,
so aborts are rare and convergence is bounded by watch latency plus
action time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro._types import KEY_MAX, Key, KeyRange
from repro.core.linked_cache import LinkedCache, LinkedCacheConfig
from repro.pubsub.broker import Broker
from repro.pubsub.consumer import Consumer
from repro.pubsub.message import Message
from repro.pubsub.subscription import RoutingPolicy, SubscriptionConfig
from repro.sim.kernel import Simulation, Timeout
from repro.storage.errors import ConflictError
from repro.storage.kv import MVCCStore
from repro.storage.tso import TimestampOracle


WORKLOAD_PREFIX = "workload/"
VM_PREFIX = "vm/"


class ProvisioningWorld:
    """Desired + actual stores, churn helpers, and the ground truth."""

    def __init__(self, sim: Simulation, tso: Optional[TimestampOracle] = None) -> None:
        self.sim = sim
        tso = tso or TimestampOracle()
        self.desired = MVCCStore(tso=tso, name="desired", clock=sim.now)
        self.actual = MVCCStore(tso=tso, name="actual", clock=sim.now)
        self._next_vm = 0
        self._next_workload = 0

    # ------------------------------------------------------------------
    # churn operations

    def add_vm(self) -> Key:
        vm_id = f"{VM_PREFIX}{self._next_vm:06d}"
        self._next_vm += 1
        self.actual.put(vm_id, {"alive": True, "workload": None})
        return vm_id

    def kill_vm(self, vm_id: Key) -> None:
        row = self.actual.get(vm_id)
        if row is not None and row["alive"]:
            self.actual.put(vm_id, {"alive": False, "workload": row["workload"]})

    def kill_random_vm(self) -> Optional[Key]:
        alive = [k for k, v in self.actual.scan() if v.get("alive")]
        if not alive:
            return None
        vm_id = alive[self.sim.rng.randrange(len(alive))]
        self.kill_vm(vm_id)
        return vm_id

    def add_workload(self, replicas: int = 2) -> Key:
        workload_id = f"{WORKLOAD_PREFIX}{self._next_workload:06d}"
        self._next_workload += 1
        self.desired.put(workload_id, {"replicas": replicas})
        return workload_id

    def remove_workload(self, workload_id: Key) -> None:
        if self.desired.get(workload_id) is not None:
            self.desired.delete(workload_id)

    # ------------------------------------------------------------------
    # ground truth

    def deficits(self) -> Dict[Key, int]:
        """Per-workload missing live replicas (positive = unsatisfied)."""
        assigned: Dict[Key, int] = {}
        for _vm, row in self.actual.scan():
            if row.get("alive") and row.get("workload"):
                workload = row["workload"]
                assigned[workload] = assigned.get(workload, 0) + 1
        out: Dict[Key, int] = {}
        for workload_id, spec in self.desired.scan():
            deficit = spec["replicas"] - assigned.get(workload_id, 0)
            if deficit > 0:
                out[workload_id] = deficit
        return out

    def satisfied_fraction(self) -> float:
        workloads = list(self.desired.scan())
        if not workloads:
            return 1.0
        deficits = self.deficits()
        return 1.0 - len(deficits) / len(workloads)

    def free_live_vms(self) -> List[Key]:
        return [
            vm for vm, row in self.actual.scan()
            if row.get("alive") and row.get("workload") is None
        ]

    # ------------------------------------------------------------------
    # conditional actions (both coordinators act only through these)

    def try_assign(self, vm_id: Key, workload_id: Key) -> bool:
        """Assign iff the VM is currently live and free and the workload
        still exists."""
        txn = self.actual.transaction()
        row = txn.get(vm_id)
        if row is None or not row["alive"] or row["workload"] is not None:
            txn.abort()
            return False
        if self.desired.get(workload_id) is None:
            txn.abort()
            return False
        txn.put(vm_id, {"alive": True, "workload": workload_id})
        try:
            txn.commit()
        except ConflictError:
            return False
        return True

    def try_unassign(self, vm_id: Key) -> bool:
        txn = self.actual.transaction()
        row = txn.get(vm_id)
        if row is None or row["workload"] is None:
            txn.abort()
            return False
        txn.put(vm_id, {"alive": row["alive"], "workload": None})
        try:
            txn.commit()
        except ConflictError:
            return False
        return True


class EventDrivenCoordinator:
    """Queue-of-tasks coordinator over pubsub events + polled VM view."""

    def __init__(
        self,
        sim: Simulation,
        world: ProvisioningWorld,
        broker: Broker,
        poll_interval: float = 5.0,
        full_sweep_interval: float = 60.0,
        action_time: float = 0.01,
    ) -> None:
        self.sim = sim
        self.world = world
        self.action_time = action_time
        self.poll_interval = poll_interval
        self.full_sweep_interval = full_sweep_interval
        self._cached_free: List[Key] = []
        self.actions = 0
        self.misdirected_actions = 0  # acted on state that was stale
        # desired-store changes flow through pubsub
        from repro.cdc.publisher import CdcPublisher

        broker.create_topic("provision-events", num_partitions=4)
        self._desired_pub = CdcPublisher(sim, world.desired.history, broker, "provision-events")
        self._actual_pub = CdcPublisher(sim, world.actual.history, broker, "provision-events")
        group = broker.consumer_group(
            "provision-events",
            "coordinator",
            SubscriptionConfig(routing=RoutingPolicy.RANDOM, ack_timeout=10.0),
        )
        self._consumer = Consumer(
            sim, "coordinator", handler=self._on_event, service_time=action_time
        )
        group.join(self._consumer)
        sim.call_after(poll_interval, self._poll)
        sim.call_after(full_sweep_interval, self._full_sweep)

    # ------------------------------------------------------------------
    # event handling (acts on the event payload: the world as it *was*)

    def _on_event(self, message: Message) -> bool:
        key = message.key or ""
        if key.startswith(WORKLOAD_PREFIX):
            if message.payload["op"] == "put":
                replicas = message.payload["value"]["replicas"]
                self._provision(key, replicas)
            return True
        if key.startswith(VM_PREFIX) and message.payload["op"] == "put":
            row = message.payload["value"]
            if not row["alive"] and row["workload"] is not None:
                # a VM died while assigned: repair that workload by one
                self._provision(row["workload"], 1, repair_vm=key)
            return True
        return True

    def _provision(self, workload_id: Key, count: int, repair_vm: Optional[Key] = None) -> None:
        if repair_vm is not None:
            self.actions += 1
            if not self.world.try_unassign(repair_vm):
                self.misdirected_actions += 1
        placed = 0
        while placed < count and self._cached_free:
            vm_id = self._cached_free.pop()
            self.actions += 1
            if self.world.try_assign(vm_id, workload_id):
                placed += 1
            else:
                self.misdirected_actions += 1  # stale free-list entry

    # ------------------------------------------------------------------
    # stale free-VM view

    def _poll(self) -> None:
        self._cached_free = self.world.free_live_vms()
        self.sim.call_after(self.poll_interval, self._poll)

    # ------------------------------------------------------------------
    # the operational fallback: slow full resync

    def _full_sweep(self) -> None:
        free = self.world.free_live_vms()
        for workload_id, deficit in self.world.deficits().items():
            for _ in range(deficit):
                if not free:
                    break
                vm_id = free.pop()
                self.actions += 1
                if not self.world.try_assign(vm_id, workload_id):
                    self.misdirected_actions += 1
        self.sim.call_after(self.full_sweep_interval, self._full_sweep)


class WatchReconciler:
    """Watches desired + actual; reconciles against current state."""

    def __init__(
        self,
        sim: Simulation,
        world: ProvisioningWorld,
        desired_watchable,
        actual_watchable,
        tick: float = 0.5,
        action_time: float = 0.01,
    ) -> None:
        self.sim = sim
        self.world = world
        self.tick = tick
        self.action_time = action_time
        self.actions = 0
        self.misdirected_actions = 0
        self._desired_view = LinkedCache(
            sim, desired_watchable,
            lambda kr: (world.desired.last_version, dict(world.desired.scan(kr))),
            KeyRange(WORKLOAD_PREFIX, WORKLOAD_PREFIX + KEY_MAX),
            config=LinkedCacheConfig(snapshot_latency=0.01),
            name="reconciler-desired",
        )
        self._actual_view = LinkedCache(
            sim, actual_watchable,
            lambda kr: (world.actual.last_version, dict(world.actual.scan(kr))),
            KeyRange(VM_PREFIX, VM_PREFIX + KEY_MAX),
            config=LinkedCacheConfig(snapshot_latency=0.01),
            name="reconciler-actual",
        )
        self._desired_view.start()
        self._actual_view.start()
        sim.spawn(self._loop(), name="reconciler")

    def _loop(self):
        while True:
            self.reconcile_once()
            yield Timeout(self.tick)

    def reconcile_once(self) -> int:
        """One pass: free dead-VM assignments, fill deficits from the
        watched (current) view.  Returns actions taken."""
        if not (self._desired_view.available and self._actual_view.available):
            return 0
        desired = self._desired_view.data.items_latest()
        actual = self._actual_view.data.items_latest()
        taken = 0
        assigned: Dict[Key, int] = {}
        free: List[Key] = []
        for vm_id, row in sorted(actual.items()):
            if row["alive"] and row["workload"] is None:
                free.append(vm_id)
            elif row["alive"] and row["workload"] is not None:
                if row["workload"] in desired:
                    assigned[row["workload"]] = assigned.get(row["workload"], 0) + 1
                else:
                    # workload deleted: release the VM
                    self.actions += 1
                    taken += 1
                    if not self.world.try_unassign(vm_id):
                        self.misdirected_actions += 1
            elif not row["alive"] and row["workload"] is not None:
                self.actions += 1
                taken += 1
                if not self.world.try_unassign(vm_id):
                    self.misdirected_actions += 1
        for workload_id, spec in sorted(desired.items()):
            deficit = spec["replicas"] - assigned.get(workload_id, 0)
            while deficit > 0 and free:
                vm_id = free.pop()
                self.actions += 1
                taken += 1
                if self.world.try_assign(vm_id, workload_id):
                    deficit -= 1
                else:
                    self.misdirected_actions += 1
        return taken
