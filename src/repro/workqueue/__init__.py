"""Work queueing and balancing: §3.2.4 vs §4.3.

Two ways to run a fleet of workers over a stream of keyed tasks:

- :mod:`~repro.workqueue.pubsub_worker` — tasks as pubsub messages,
  workers as a consumer group.  Affinity is whatever the routing policy
  gives (key-hash over current membership), processing is FIFO per
  worker (head-of-line blocking), and a worker cannot reprioritize what
  the broker already queued.
- :mod:`~repro.workqueue.watch_worker` — tasks as rows in a store,
  workers dynamically sharded over key ranges by an auto-sharder, each
  watching its ranges and choosing what to work on next ("the
  application can then prioritize entities, fully mitigating
  head-of-line blocking problems", §4.3).

:mod:`~repro.workqueue.coordinator` is the paper's closing example: a
VM-provisioning coordinator, event-driven (acting on the world as it
was when the event was enqueued) vs a watch-based reconciler (acting on
the world as it is).
"""

from repro.workqueue.tasks import Task, TaskStats
from repro.workqueue.state_cache import StateCache
from repro.workqueue.pubsub_worker import PubsubWorkerPool
from repro.workqueue.watch_worker import WatchWorkerPool
from repro.workqueue.coordinator import (
    ProvisioningWorld,
    EventDrivenCoordinator,
    WatchReconciler,
)

__all__ = [
    "Task",
    "TaskStats",
    "StateCache",
    "PubsubWorkerPool",
    "WatchWorkerPool",
    "ProvisioningWorld",
    "EventDrivenCoordinator",
    "WatchReconciler",
]
