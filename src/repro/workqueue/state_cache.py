"""Per-worker LRU state cache.

"Affinitization is important for efficient work processing because it
enables consumers to cache state across ... ranges of keys they are
assigned" (§3.2.4).  Processing a task whose key's state is cached is
cheap (warm); otherwise the worker pays a cold penalty (loading state
from the database) and inserts the key.  The experiments compare warm
fractions across routing/sharding schemes.
"""

from __future__ import annotations

from collections import OrderedDict


class StateCache:
    """Bounded LRU set of keys whose state is loaded."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def touch(self, key: str) -> bool:
        """Access ``key``'s state; returns True when warm (cached)."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._entries[key] = None
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return False

    def contains(self, key: str) -> bool:
        """Non-mutating membership check (for service-time estimation)."""
        return key in self._entries

    def drop_outside(self, predicate) -> int:
        """Drop cached keys failing ``predicate`` (range handoffs);
        returns count dropped."""
        doomed = [k for k in self._entries if not predicate(k)]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
