"""Pubsub work queue: tasks as messages, workers as a consumer group.

The §3.2.4 baseline.  Its structural properties (not bugs — contract
consequences):

- **FIFO per worker**: the broker pushes messages into each worker's
  queue; a poison task stalls everything queued behind it on that
  worker (head-of-line blocking).  The worker cannot reorder: the
  messages are already in its lap.
- **Affinity by key hash over current membership**: stable while
  membership is stable, but reshuffles wholesale when a worker joins or
  leaves, and cannot follow an application auto-sharder.
- At-least-once: a worker crash redelivers unacked tasks elsewhere
  after the ack timeout (conditional completion writes make the work
  idempotent in both implementations).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.trace import hops
from repro.pubsub.broker import Broker
from repro.pubsub.consumer import Consumer
from repro.pubsub.message import Message
from repro.pubsub.subscription import RoutingPolicy, SubscriptionConfig
from repro.resilience.retry import Deadline
from repro.sim.kernel import Simulation
from repro.sim.metrics import MetricsRegistry
from repro.workqueue.state_cache import StateCache
from repro.workqueue.tasks import Task, TaskStats


class PubsubWorkerPool:
    """A consumer group of workers with per-key state caches."""

    def __init__(
        self,
        sim: Simulation,
        broker: Broker,
        topic: str = "tasks",
        num_workers: int = 4,
        routing: RoutingPolicy = RoutingPolicy.KEY,
        cold_penalty: float = 0.02,
        cache_capacity: int = 256,
        num_partitions: int = 8,
        ack_timeout: float = 30.0,
        create_topic: bool = True,
        task_deadline: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
        delivery_batch: int = 1,
        batch_overhead: float = 0.0,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if task_deadline is not None and task_deadline <= 0:
            raise ValueError("task_deadline must be positive when set")
        self.sim = sim
        self.broker = broker
        self.topic = topic
        self.cold_penalty = cold_penalty
        #: per-task completion deadline measured from enqueue; a task
        #: that spent its whole budget queued (e.g. behind a poison task
        #: — the §3.2.4 head-of-line scenario) is shed instead of being
        #: processed uselessly late
        self.task_deadline = task_deadline
        self.metrics = metrics or broker.metrics
        #: tasks are traced as (key=entity key, version=task_id) chains
        self.tracer = tracer
        self.deadline_dropped = 0
        self.stats = TaskStats()
        if create_topic:
            broker.create_topic(topic, num_partitions=num_partitions)
        self._batch_overhead = batch_overhead
        self.group = broker.consumer_group(
            topic,
            f"{topic}-workers",
            SubscriptionConfig(
                routing=routing,
                ack_timeout=ack_timeout,
                max_delivery_batch=delivery_batch,
            ),
        )
        self.workers: List[Consumer] = []
        self.caches: Dict[str, StateCache] = {}
        self._completed_ids: set[int] = set()
        for idx in range(num_workers):
            self._add_worker(f"worker-{idx}", cache_capacity)

    def _add_worker(self, name: str, cache_capacity: int) -> Consumer:
        cache = StateCache(cache_capacity)
        self.caches[name] = cache

        def service_time(message: Message, cache: StateCache = cache) -> float:
            task = Task.from_payload(message.payload)
            if self._past_deadline(task):
                return 0.0  # shed without paying the work cost
            warm = cache.contains(task.key)
            return task.work if warm else task.work + self.cold_penalty

        def handler(message: Message, name: str = name, cache: StateCache = cache) -> bool:
            task = Task.from_payload(message.payload)
            if task.task_id in self._completed_ids:
                return True  # duplicate redelivery; idempotent
            if self._past_deadline(task):
                # ack-and-drop: redelivering an already-late task
                # elsewhere would just spread the lateness
                self._completed_ids.add(task.task_id)
                self.deadline_dropped += 1
                self.metrics.counter("resilience.workqueue.deadline_dropped").inc()
                return True
            warm = cache.touch(task.key)
            self._completed_ids.add(task.task_id)
            self.stats.record(task, self.sim.now(), warm)
            if self.tracer is not None:
                self.tracer.record(
                    hops.TASK_COMPLETE, name,
                    key=task.key, version=task.task_id, worker=name,
                )
            return True

        def batch_handler(
            messages: List[Message], handler=handler
        ) -> bool:
            # one invocation completes the whole delivered group; each
            # task keeps its own dedup/deadline/stats accounting
            for message in messages:
                handler(message)
            return True

        worker = Consumer(
            self.sim, name, handler=handler, service_time_fn=service_time,
            batch_handler=batch_handler, batch_overhead=self._batch_overhead,
        )
        self.workers.append(worker)
        self.group.join(worker)
        return worker

    def _past_deadline(self, task: Task) -> bool:
        if self.task_deadline is None:
            return False
        return Deadline.at(self.sim, task.enqueued_at + self.task_deadline).expired

    # ------------------------------------------------------------------
    # driving

    def submit(self, task: Task) -> None:
        """Publish a task message."""
        if self.tracer is not None:
            self.tracer.record(
                hops.TASK_ENQUEUE, "workqueue",
                key=task.key, version=task.task_id, queue=self.topic,
            )
        self.broker.publish(self.topic, task.key, task.payload())

    def add_worker(self, name: str, cache_capacity: int = 256) -> Consumer:
        """Scale out (triggers key-hash reshuffle for KEY routing)."""
        return self._add_worker(name, cache_capacity)

    def crash_worker(self, name: str) -> None:
        """Worker failure; its unacked tasks redeliver after timeout."""
        for worker in self.workers:
            if worker.name == name:
                worker.crash()
                return
        raise KeyError(name)

    def recover_worker(self, name: str) -> None:
        for worker in self.workers:
            if worker.name == name:
                worker.recover()
                return
        raise KeyError(name)

    # ------------------------------------------------------------------
    # introspection

    def backlog(self) -> int:
        return self.group.backlog()

    @property
    def completed(self) -> int:
        return self.stats.completed

    def queue_depths(self) -> Dict[str, int]:
        return {worker.name: worker.queue_depth for worker in self.workers}
