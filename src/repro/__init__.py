"""repro: reproduction of "Understanding the limitations of pubsub
systems" (Adya, Bogle, Meek — HotOS 2025).

The library contains both systems the paper reasons about, built on a
deterministic discrete-event simulator:

- the **pubsub baseline** (:mod:`repro.pubsub`): topics, partitions,
  consumer groups and free consumers, retention GC, compaction,
  dead-letter queues, replay — with the silent-loss and affinity
  limitations of §3 faithfully present;
- the **proposed model** (:mod:`repro.core`): explicit storage
  (:mod:`repro.storage`) plus the watch contracts of §4.2 —
  ``Watchable``/``WatchCallback``/``Ingester`` — a standalone watch
  system, knowledge regions, linked caches, and snapshot stitching;
- the **use-case substrates** both are evaluated on: CDC
  (:mod:`repro.cdc`), auto-sharding (:mod:`repro.sharding`),
  distributed caching (:mod:`repro.cache`), cross-store replication
  (:mod:`repro.replication`), and work queueing / reconciliation
  (:mod:`repro.workqueue`).

Start with ``examples/quickstart.py``; the experiment suite that
reproduces every figure/claim of the paper lives in
:mod:`repro.bench.experiments` with pytest harnesses in
``benchmarks/``.  See DESIGN.md for the claim-to-experiment map and
EXPERIMENTS.md for paper-vs-measured results.
"""

from repro._types import (
    Key,
    KeyRange,
    KEY_MAX,
    KEY_MIN,
    Mutation,
    MutationKind,
    Version,
    VERSION_ZERO,
)

__version__ = "1.0.0"

__all__ = [
    "Key",
    "KeyRange",
    "KEY_MAX",
    "KEY_MIN",
    "Mutation",
    "MutationKind",
    "Version",
    "VERSION_ZERO",
    "__version__",
]
