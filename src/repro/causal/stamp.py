"""Causal stamps: compact dependency metadata minted at commit time.

A :class:`CausalStamp` names the commits an update happened after: the
stamper keeps a bounded window of the most recent ``(key, version)``
commit pairs and snapshots it as the dependency list of every write in
the next commit.  The window is the compactness/coverage dial — wide
enough to cover the writer's read-modify-write spans (the E3 pattern is
depth 1), narrow enough that the metadata stays a few dozen bytes.

Why a window of pairs and not a single happens-before chain: receivers
filter by key range.  With chain deps (each commit pointing only at its
predecessor), a chain that passes through an out-of-range key unlinks
two in-range updates — the receiver can't know B depends on A if the
only edge goes B -> C -> A and C is invisible to it.  Listing recent
pairs keeps every direct edge inside the window visible to any filter.

Stamps cross the wire (CDC payloads, relay event frames), so the class
registers with :mod:`repro.sim.wire`; its encoded size is what E16
reports as metadata bytes/msg.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.sim import wire

DepList = Tuple[Tuple[str, int], ...]


class CausalStamp:
    """Dependency metadata for one key write of one commit.

    ``version`` is the commit version of the stamped write itself;
    ``deps`` is the happens-before evidence: the ``(key, version)``
    pairs of the most recent prior commits, oldest first.  Writes of
    the same transaction share one dep list (they are concurrent with
    each other, ordered only by the commit version).
    """

    __slots__ = ("version", "deps", "encoded")

    def __init__(self, version: int, deps: DepList = ()) -> None:
        self.version = version
        self.deps = tuple(tuple(dep) for dep in deps)

    def wire_bytes(self) -> int:
        """Encoded size on the wire — the metadata overhead of causal
        mode, per message."""
        return wire.wire_size(self)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CausalStamp)
            and self.version == other.version
            and self.deps == other.deps
        )

    def __hash__(self) -> int:
        return hash((self.version, self.deps))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CausalStamp(v{self.version}, deps={list(self.deps)})"


wire.register(CausalStamp, "causal.Stamp", ("version", "deps"))


class StampIndex:
    """``(key, version) -> CausalStamp`` lookup.

    The producer side records stamps as the stamper mints them; publish
    paths (CDC payloads, relay frames) look stamps up to ship them
    in-band, and receivers that got stamps over the wire record them
    into a local index for their delivery buffers to read.
    """

    __slots__ = ("_stamps",)

    def __init__(self) -> None:
        self._stamps: Dict[Tuple[str, int], CausalStamp] = {}

    def record(self, key: str, version: int, stamp: CausalStamp) -> None:
        self._stamps[(key, version)] = stamp

    def lookup(self, key: str, version: Optional[int]) -> Optional[CausalStamp]:
        if version is None:
            return None
        return self._stamps.get((key, version))

    def __len__(self) -> int:
        return len(self._stamps)


class CausalStamper:
    """Mints a :class:`CausalStamp` per key write by tailing commits.

    Attach to a store with :meth:`observe_store` (same pattern as
    ``Tracer.observe_store``); every subsequent commit gets stamped and
    recorded into :attr:`index`.  Purely observational: no sim events,
    no RNG — attaching a stamper never perturbs the schedule.
    """

    __slots__ = ("window", "index", "_recent", "_tracer", "_component",
                 "stamped", "meta_bytes")

    def __init__(
        self,
        window: int = 8,
        index: Optional[StampIndex] = None,
        tracer=None,
        component: str = "store",
    ) -> None:
        if window < 1:
            raise ValueError("dependency window must be >= 1")
        self.window = window
        self.index = index if index is not None else StampIndex()
        self._recent: "OrderedDict[str, int]" = OrderedDict()
        self._tracer = tracer
        self._component = component
        self.stamped = 0
        self.meta_bytes = 0

    def observe_store(self, store):
        """Stamp every future commit of ``store``; returns the cancel
        function of the history tail."""
        return store.history.tail(self.on_commit)

    def on_commit(self, commit) -> None:
        """Stamp one :class:`~repro.storage.history.CommittedTransaction`."""
        # Snapshot the window *before* folding this commit in: a
        # transaction's writes depend on prior commits, not each other.
        deps = tuple(self._recent.items())
        for key, _mutation in commit.writes:
            stamp = CausalStamp(commit.version, deps)
            self.index.record(key, commit.version, stamp)
            self.stamped += 1
            self.meta_bytes += stamp.wire_bytes()
            if self._tracer is not None:
                from repro.obs.trace import hops

                self._tracer.record(
                    hops.CAUSAL_STAMP, self._component,
                    key=key, version=commit.version,
                    n_deps=len(deps), meta_bytes=stamp.wire_bytes(),
                )
        for key, _mutation in commit.writes:
            if key in self._recent:
                del self._recent[key]
            self._recent[key] = commit.version
        while len(self._recent) > self.window:
            self._recent.popitem(last=False)
