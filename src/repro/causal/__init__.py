"""Causal-broadcast delivery tier: cross-key happens-before on top of
per-partition FIFO / per-key MVCC order.

The repo's two pipelines stop at per-partition FIFO (pubsub) and
per-key MVCC order (watch): neither says anything about the order in
which a consumer observes writes to *different* keys, which is exactly
the axis the E3/Figure-2 invalidation race lives on.  This package adds
the missing tier, modeled on VCube-PS (see PAPERS.md): commits are
stamped with a compact causal-dependency list, and receivers run the
stamped stream through a deterministic :class:`CausalBuffer` that holds
each delivery until its dependencies have been delivered — bounded by a
hold deadline so a lost dependency degrades to attributed lateness, not
an indefinite stall.

Pieces:

- :class:`CausalStamp` — wire-registered dependency metadata: the
  commit version plus a bounded window of recent ``(key, version)``
  commit pairs.  Pairs (not a single happens-before chain) because
  receivers filter by key range: a chain through an out-of-range key
  would silently unlink two in-range updates.
- :class:`CausalStamper` — tails a store's commit history and mints a
  stamp per key write, recording it in a :class:`StampIndex`.
- :class:`StampIndex` — ``(key, version) -> stamp`` lookup used by the
  publish paths (CDC payloads, relay frames) and by receivers.
- :class:`CausalBuffer` — the delivery gate: ``submit`` either delivers
  immediately, or parks the update until its in-range, above-floor
  dependencies have been delivered (cascading deterministically), or
  the per-entry hold deadline fires and delivers anyway with a
  ``causal.deadline`` trace attributing what it was waiting for.

Everything is opt-in via ``delivery_mode="causal"`` on the
subscription, edge-frontend, and applier configs; with the default
``"fifo"`` mode no stamper is attached, no buffer exists, and every
existing experiment stays byte-identical.  See docs/causal.md.
"""

from repro.causal.stamp import CausalStamp, CausalStamper, StampIndex
from repro.causal.buffer import CausalBuffer, CausalBufferConfig

__all__ = [
    "CausalStamp",
    "CausalStamper",
    "StampIndex",
    "CausalBuffer",
    "CausalBufferConfig",
]
