"""The causal delivery gate: hold until deps delivered, bounded by a deadline.

One :class:`CausalBuffer` sits in front of each causal-mode receiver
(a subscription dispatch loop, an edge session feed, an applier).  The
delivery rule for an update stamped with deps ``(k, v)``:

- a dep is **unmet** when ``k`` is in the receiver's key range, ``v``
  is above the receiver's *floor* (the snapshot/cursor version it
  resumed from — anything at or below was already observed), and the
  buffer has not yet delivered ``k`` at version ``>= v``;
- no unmet deps: deliver immediately and re-check held entries that
  were waiting on this key (cascading, in deterministic hold order);
- unmet deps: park the entry and arm a one-shot hold deadline.  If the
  deadline fires first, deliver anyway — causal order is traded for
  bounded staleness — and emit a ``causal.deadline`` trace naming the
  dependency it was still waiting for, so the violation is attributed
  loss provenance rather than a silent reorder.

Unstamped updates (``stamp=None``) pass straight through but still
advance the per-key watermark, so stamped updates can depend on them.

Determinism: hold ids are monotone ints, cascades process waiters in
hold order, and the only kernel interaction is the per-entry deadline
timer — armed only when an entry actually holds, so a causal buffer on
an in-order stream never perturbs the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.obs.trace import hops
from repro.sim.kernel import Simulation


@dataclass(frozen=True)
class CausalBufferConfig:
    """Tuning for one delivery gate.

    ``hold_deadline`` bounds how long (sim seconds) an entry may wait
    for its dependencies; ``max_held`` bounds the parked population —
    when exceeded, the *oldest* held entry is force-released (same
    accounting as a deadline release) so a burst of missing deps
    degrades to reordering, never to unbounded memory.
    """

    hold_deadline: float = 0.25
    max_held: int = 10_000

    def __post_init__(self) -> None:
        if self.hold_deadline <= 0:
            raise ValueError("hold_deadline must be positive")
        if self.max_held < 1:
            raise ValueError("max_held must be >= 1")


class _Held:
    __slots__ = ("hold_id", "key", "version", "deliver", "unmet",
                 "held_at", "timer")

    def __init__(self, hold_id, key, version, deliver, unmet, held_at):
        self.hold_id = hold_id
        self.key = key
        self.version = version
        self.deliver = deliver
        self.unmet = unmet  # set of (key, version) still missing
        self.held_at = held_at
        self.timer = None


class CausalBuffer:
    """Deterministic happens-before gate in front of one receiver."""

    __slots__ = (
        "sim", "name", "config", "_in_range", "_tracer", "_component",
        "floor", "applied", "_held", "_waiters", "_next_hold_id",
        "delivered", "held_total", "released_deps", "released_deadline",
        "released_overflow", "held_max_depth", "hold_time_total",
    )

    def __init__(
        self,
        sim: Simulation,
        config: Optional[CausalBufferConfig] = None,
        name: str = "causal",
        in_range: Optional[Callable[[str], bool]] = None,
        tracer=None,
        component: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.config = config or CausalBufferConfig()
        self._in_range = in_range
        self._tracer = tracer
        self._component = component or name
        self.floor = 0
        self.applied: Dict[str, int] = {}
        self._held: Dict[int, _Held] = {}
        self._waiters: Dict[str, List[int]] = {}
        self._next_hold_id = 0
        # counters (read by experiments and the conformance model)
        self.delivered = 0
        self.held_total = 0
        self.released_deps = 0
        self.released_deadline = 0
        self.released_overflow = 0
        self.held_max_depth = 0
        self.hold_time_total = 0.0

    # ------------------------------------------------------------------
    # public surface

    @property
    def held_count(self) -> int:
        """Entries currently parked on unmet dependencies."""
        return len(self._held)

    def set_floor(self, version: int) -> None:
        """Raise the resume floor: deps at or below ``version`` count as
        already observed (snapshot served at V, cursor resumed from V)."""
        if version > self.floor:
            self.floor = version

    def submit(
        self,
        key: str,
        version: int,
        stamp,
        deliver: Callable[[], None],
    ) -> bool:
        """Gate one delivery; returns True if it was delivered now.

        ``stamp`` is a :class:`~repro.causal.stamp.CausalStamp` or None
        (unstamped updates pass through).  ``deliver`` runs exactly once
        — now, on dependency arrival, or at the hold deadline.
        """
        unmet = self._unmet(stamp)
        if not unmet:
            self._deliver(key, version, deliver)
            return True
        self._hold(key, version, deliver, unmet)
        return False

    def flush(self) -> int:
        """Force-release every held entry (deterministic hold order);
        returns how many were released.  Used at teardown so a drained
        run never strands deliveries."""
        released = 0
        for hold_id in sorted(self._held):
            entry = self._held.get(hold_id)
            if entry is not None:
                self._force_release(entry, cause="flush")
                released += 1
        return released

    # ------------------------------------------------------------------
    # internals

    def _unmet(self, stamp) -> Set[Tuple[str, int]]:
        if stamp is None or not stamp.deps:
            return set()
        in_range = self._in_range
        floor = self.floor
        applied = self.applied
        return {
            (k, v)
            for k, v in stamp.deps
            if v > floor
            and (in_range is None or in_range(k))
            and applied.get(k, 0) < v
        }

    def _deliver(self, key: str, version: int, deliver) -> None:
        if version > self.applied.get(key, 0):
            self.applied[key] = version
        self.delivered += 1
        deliver()
        self._wake_waiters(key)

    def _hold(self, key, version, deliver, unmet) -> None:
        hold_id = self._next_hold_id
        self._next_hold_id += 1
        entry = _Held(hold_id, key, version, deliver, unmet, self.sim.now())
        self._held[hold_id] = entry
        for dep_key, _v in unmet:
            self._waiters.setdefault(dep_key, []).append(hold_id)
        self.held_total += 1
        if len(self._held) > self.held_max_depth:
            self.held_max_depth = len(self._held)
        entry.timer = self.sim.call_after(
            self.config.hold_deadline, lambda: self._on_deadline(hold_id)
        )
        if self._tracer is not None:
            self._tracer.record(
                hops.CAUSAL_HELD, self._component,
                key=key, version=version,
                n_unmet=len(unmet),
                waiting_for=self._waiting_label(unmet),
            )
        if len(self._held) > self.config.max_held:
            oldest = self._held[min(self._held)]
            self._force_release(oldest, cause="overflow")

    def _wake_waiters(self, key: str) -> None:
        # Iteratively release entries whose deps are now met; a released
        # entry's own key may satisfy further waiters, so loop until no
        # entry is releasable.  Hold order keeps the cascade
        # deterministic.
        pending = [key]
        while pending:
            dep_key = pending.pop(0)
            waiting = self._waiters.pop(dep_key, None)
            if not waiting:
                continue
            still_waiting: List[int] = []
            for hold_id in waiting:
                entry = self._held.get(hold_id)
                if entry is None:
                    continue
                applied = self.applied
                entry.unmet = {
                    (k, v) for k, v in entry.unmet
                    if v > self.floor and applied.get(k, 0) < v
                }
                if entry.unmet:
                    still_waiting.append(hold_id)
                    continue
                self._release(entry)
                pending.append(entry.key)
            if still_waiting:
                existing = self._waiters.setdefault(dep_key, [])
                existing.extend(
                    h for h in still_waiting if h in self._held
                )

    def _release(self, entry: _Held) -> None:
        self._remove(entry)
        self.released_deps += 1
        held_for = self.sim.now() - entry.held_at
        self.hold_time_total += held_for
        if self._tracer is not None:
            self._tracer.record(
                hops.CAUSAL_RELEASED, self._component,
                key=entry.key, version=entry.version,
                held_ms=round(held_for * 1000.0, 3),
            )
        if entry.version > self.applied.get(entry.key, 0):
            self.applied[entry.key] = entry.version
        self.delivered += 1
        entry.deliver()

    def _on_deadline(self, hold_id: int) -> None:
        entry = self._held.get(hold_id)
        if entry is None:
            return
        self._force_release(entry, cause="deadline")

    def _force_release(self, entry: _Held, cause: str) -> None:
        self._remove(entry)
        if cause == "overflow":
            self.released_overflow += 1
        elif cause == "deadline":
            self.released_deadline += 1
        held_for = self.sim.now() - entry.held_at
        self.hold_time_total += held_for
        if self._tracer is not None and cause != "flush":
            self._tracer.record(
                hops.CAUSAL_DEADLINE, self._component,
                key=entry.key, version=entry.version,
                cause=cause,
                held_ms=round(held_for * 1000.0, 3),
                waiting_for=self._waiting_label(entry.unmet),
            )
        if entry.version > self.applied.get(entry.key, 0):
            self.applied[entry.key] = entry.version
        self.delivered += 1
        entry.deliver()
        self._wake_waiters(entry.key)

    def _remove(self, entry: _Held) -> None:
        self._held.pop(entry.hold_id, None)
        if entry.timer is not None:
            entry.timer.cancel()
            entry.timer = None

    @staticmethod
    def _waiting_label(unmet) -> str:
        """Compact, deterministic attribution of the missing deps."""
        return ",".join(f"{k}:{v}" for k, v in sorted(unmet))
