"""Distributed caching: the §3.2.2 use case, both ways.

The cache fleet is dynamically sharded by an auto-sharder (as modern
caches are, §3.2.2).  Freshness is maintained either by:

- a **pubsub invalidation pipeline** (:mod:`~repro.cache.invalidation`):
  CDC publishes updates to a topic; cache nodes form a consumer group.
  Modes reproduce the paper's spectrum — naive ack, ack-only-if-owner,
  leases (correctness at an availability cost), free consumers (correct
  but every node processes the full feed), and TTL fallback (bounded
  staleness, extra load); the Figure 2 race lives here; or
- a **watch pipeline** (:mod:`~repro.cache.watch_cache`): each node is
  a set of linked caches over its assigned ranges; handoffs resync from
  the store, so a reassigned key can never be left permanently stale.

:class:`~repro.cache.cluster.CacheCluster` provides routing, probing,
and the staleness audit used by experiment E3.
"""

from repro.cache.node import CacheEntry, CacheNode, CacheNodeConfig
from repro.cache.cluster import CacheCluster, Prober, ProbeStats
from repro.cache.invalidation import (
    InvalidationMode,
    PubsubCacheNode,
    PubsubInvalidationPipeline,
)
from repro.cache.watch_cache import WatchCacheNode

__all__ = [
    "CacheEntry",
    "CacheNode",
    "CacheNodeConfig",
    "CacheCluster",
    "Prober",
    "ProbeStats",
    "InvalidationMode",
    "PubsubCacheNode",
    "PubsubInvalidationPipeline",
    "WatchCacheNode",
]
