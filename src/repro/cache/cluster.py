"""Cache cluster: routing, probing, and the staleness audit.

The cluster routes client reads to the authoritative owner (per the
sharder's current assignment — real routing layers converge fast; the
interesting lag is inside the invalidation pipelines, not here).

Two measurement tools used by experiment E3:

- :class:`Prober` — a background process issuing reads and comparing
  against the store, tallying fresh/stale/unavailable/miss outcomes;
- :meth:`CacheCluster.audit_staleness` — at quiescence, counts cached
  entries that are older than the store's current value.  With no TTL
  and no further traffic these are *permanently* stale: the
  undetectable end state of a missed invalidation (§3.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro._types import Key
from repro.sharding.autosharder import AutoSharder
from repro.sim.kernel import Simulation, Timeout
from repro.storage.kv import MVCCStore


@dataclass
class ProbeStats:
    """Tallies from a probing client."""

    fresh: int = 0
    stale: int = 0
    miss: int = 0
    unavailable: int = 0
    stale_keys: set = field(default_factory=set)

    @property
    def total(self) -> int:
        return self.fresh + self.stale + self.miss + self.unavailable

    @property
    def stale_fraction(self) -> float:
        served = self.fresh + self.stale
        return self.stale / served if served else 0.0

    @property
    def unavailable_fraction(self) -> float:
        return self.unavailable / self.total if self.total else 0.0


class CacheCluster:
    """Routes reads to the current owner node."""

    def __init__(
        self,
        sim: Simulation,
        sharder: AutoSharder,
        nodes: Sequence,  # objects with serve()/peek()/owns()
        store: MVCCStore,
    ) -> None:
        self.sim = sim
        self.sharder = sharder
        self.nodes = {node.name: node for node in nodes}
        self.store = store

    def read(self, key: Key) -> Tuple[str, Optional[Any], str]:
        """(status, value, node_name) for a client read of ``key``."""
        owner = self.sharder.assignment.owner_of(key)
        node = self.nodes.get(owner)
        if node is None:
            return ("unavailable", None, owner)
        self.sharder.record_load(key)
        status, value = node.serve(key)
        return (status, value, owner)

    # ------------------------------------------------------------------
    # audits

    def audit_staleness(self, keys: Optional[Sequence[Key]] = None) -> Dict[str, int]:
        """Count cached-but-outdated entries per node at this instant.

        An entry is stale when its version is below the version of the
        store's current value for that key.  Run this after traffic has
        quiesced: anything still stale then will never be fixed except
        by TTL or luck.
        """
        if keys is None:
            keys = self.store.keys()
        stale_per_node: Dict[str, int] = {name: 0 for name in self.nodes}
        for key in keys:
            current = self.store.get_versioned(key)
            for name, node in self.nodes.items():
                entry = node.peek(key)
                if entry is None:
                    continue
                if current is None:
                    # key deleted at the store but still cached
                    stale_per_node[name] += 1
                elif entry.version < current[0] and entry.value != current[1]:
                    stale_per_node[name] += 1
        return stale_per_node

    def total_stale(self, keys: Optional[Sequence[Key]] = None) -> int:
        return sum(self.audit_staleness(keys).values())


class Prober:
    """Background read traffic with freshness checking."""

    def __init__(
        self,
        sim: Simulation,
        cluster: CacheCluster,
        keys: Sequence[Key],
        rate: float = 100.0,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.cluster = cluster
        self.keys = list(keys)
        self.interval = 1.0 / rate
        self.stats = ProbeStats()
        self._stopped = False

    def start(self) -> None:
        self.sim.spawn(self._run(), name="prober")

    def stop(self) -> None:
        self._stopped = True

    def _run(self):
        while not self._stopped:
            key = self.keys[self.sim.rng.randrange(len(self.keys))]
            status, value, _node = self.cluster.read(key)
            if status == "hit":
                expected = self.cluster.store.get(key)
                if value == expected:
                    self.stats.fresh += 1
                else:
                    self.stats.stale += 1
                    self.stats.stale_keys.add(key)
            elif status == "miss":
                self.stats.miss += 1
            else:
                self.stats.unavailable += 1
            yield Timeout(self.interval)
