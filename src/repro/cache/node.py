"""A cache pod: entries, fetch-on-miss, TTL, and an ownership view.

The node serves only keys it believes it owns.  Its belief comes from
auto-sharder notifications that arrive with per-node latency — so two
nodes can simultaneously believe they own a key (or neither), which is
the raw material of the Figure 2 race.

On losing a range the node drops the range's entries (standard
hygiene); the paper's race is *not* about forgetting to drop — it is
about the invalidation going to the wrong node afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro._types import Key, KeyRange, Version
from repro.obs.trace import hops
from repro.sharding.assignment import Assignment
from repro.sim.kernel import Simulation
from repro.storage.kv import MVCCStore


@dataclass
class CacheEntry:
    """One cached value."""

    value: Any
    version: Version
    cached_at: float


@dataclass
class CacheNodeConfig:
    """Node behaviour."""

    #: Latency of a fill read against the backing store.
    fetch_latency: float = 0.01
    #: Entry TTL; None disables expiry (the paper's point: without a
    #: fallback, a missed invalidation is stale *forever*).
    ttl: Optional[float] = None

    def __post_init__(self) -> None:
        if self.fetch_latency < 0:
            raise ValueError("fetch_latency must be >= 0")
        if self.ttl is not None and self.ttl <= 0:
            raise ValueError("ttl must be positive when set")


class CacheNode:
    """Demand-filled cache with an ownership view."""

    def __init__(
        self,
        sim: Simulation,
        name: str,
        store: MVCCStore,
        config: Optional[CacheNodeConfig] = None,
        tracer=None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.store = store
        self.config = config or CacheNodeConfig()
        self.tracer = tracer
        self._entries: Dict[Key, CacheEntry] = {}
        self._owned: List[KeyRange] = []
        self._owned_generation = -1
        self._fills_pending: Dict[Key, bool] = {}
        self.hits = 0
        self.misses = 0
        self.not_owner = 0
        self.fills = 0
        self.invalidations_applied = 0

    # ------------------------------------------------------------------
    # ownership (sharder listener; called with per-node latency)

    def on_assignment(self, assignment: Assignment) -> None:
        if assignment.generation <= self._owned_generation:
            return  # stale notification
        self._owned_generation = assignment.generation
        new_owned = assignment.ranges_of(self.name)
        # drop entries for ranges we no longer own
        for key in list(self._entries):
            if not any(r.contains(key) for r in new_owned):
                del self._entries[key]
        self._owned = new_owned

    def owns(self, key: Key) -> bool:
        """This node's *belief* about owning ``key`` (possibly stale)."""
        return any(r.contains(key) for r in self._owned)

    @property
    def owned_ranges(self) -> List[KeyRange]:
        return list(self._owned)

    # ------------------------------------------------------------------
    # serving

    def serve(self, key: Key) -> Tuple[str, Optional[Any]]:
        """Serve a read: ('hit', value) | ('miss', None) | ('not_owner',
        None).  A miss starts an async fill from the store."""
        if not self.owns(key):
            self.not_owner += 1
            return ("not_owner", None)
        entry = self._entries.get(key)
        if entry is not None and not self._expired(entry):
            self.hits += 1
            return ("hit", entry.value)
        self.misses += 1
        self._start_fill(key)
        return ("miss", None)

    def _expired(self, entry: CacheEntry) -> bool:
        ttl = self.config.ttl
        return ttl is not None and self.sim.now() - entry.cached_at > ttl

    def _start_fill(self, key: Key) -> None:
        if self._fills_pending.get(key):
            return
        self._fills_pending[key] = True

        def fill() -> None:
            self._fills_pending.pop(key, None)
            if not self.owns(key):
                return  # lost the range while fetching
            versioned = self.store.get_versioned(key)
            if versioned is None:
                self._entries.pop(key, None)
                return
            version, value = versioned
            existing = self._entries.get(key)
            if existing is not None and existing.version > version:
                return  # a fresher invalidation-fill already landed
            self.fills += 1
            self._entries[key] = CacheEntry(value, version, self.sim.now())

        self.sim.call_after(self.config.fetch_latency, fill)

    # ------------------------------------------------------------------
    # invalidation entry point (pipelines call this)

    def apply_invalidation(self, key: Key, version: Version) -> None:
        """Drop the cached entry if it is older than ``version``; the
        next read refills from the store."""
        entry = self._entries.get(key)
        applied = entry is not None and entry.version < version
        if applied:
            del self._entries[key]
            self.invalidations_applied += 1
        if self.tracer is not None:
            # recorded even when no entry was dropped: the invalidation
            # *reached* this node, which is what the causal chain tracks
            self.tracer.record(
                hops.CACHE_APPLY, self.name,
                key=key, version=version, node=self.name, applied=applied,
            )

    # ------------------------------------------------------------------
    # inspection (experiments / audits)

    def peek(self, key: Key) -> Optional[CacheEntry]:
        """The cached entry regardless of ownership/TTL (None if absent
        or TTL-expired — an expired entry cannot serve a stale read)."""
        entry = self._entries.get(key)
        if entry is None or self._expired(entry):
            return None
        return entry

    @property
    def entry_count(self) -> int:
        return len(self._entries)
