"""Watch-based cache node: the §4.3 alternative.

Each node maintains one :class:`~repro.core.linked_cache.LinkedCache`
per assigned key range.  On a handoff the node drops the departed
range's linked cache and creates one for the gained range, which
snapshots the store and watches from the snapshot version — so there is
no interleaving of "who gets the invalidation": the new owner's
snapshot-then-watch protocol *cannot* miss an update, no matter how the
handoff raced with writes.  (The brief sync window is visible as
unavailability, the honest cost; experiment E3 reports it.)

The node can serve eventually-consistent reads (``serve``) and, thanks
to progress events, snapshot-consistent reads (``read_at`` /
``snapshot_read``) — the capability pubsub caches cannot offer at all.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro._types import Key, KeyRange, Version
from repro.cache.node import CacheEntry
from repro.core.linked_cache import LinkedCache, LinkedCacheConfig
from repro.sharding.assignment import Assignment
from repro.sim.kernel import Simulation
from repro.storage.kv import MVCCStore


class WatchCacheNode:
    """A dynamically sharded, watch-fed cache node."""

    def __init__(
        self,
        sim: Simulation,
        name: str,
        store: MVCCStore,
        watchable,
        cache_config: Optional[LinkedCacheConfig] = None,
        tracer=None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.store = store
        self.watchable = watchable
        self.cache_config = cache_config or LinkedCacheConfig(snapshot_latency=0.02)
        self.tracer = tracer
        self._caches: Dict[KeyRange, LinkedCache] = {}
        self._owned_generation = -1
        self.hits = 0
        self.not_owner = 0
        self.unavailable = 0

    # ------------------------------------------------------------------
    # sharder listener

    def on_assignment(self, assignment: Assignment) -> None:
        if assignment.generation <= self._owned_generation:
            return
        self._owned_generation = assignment.generation
        new_ranges = set(assignment.ranges_of(self.name))
        for key_range in list(self._caches):
            if key_range not in new_ranges:
                self._caches.pop(key_range).stop()
        for key_range in new_ranges:
            if key_range not in self._caches:
                cache = LinkedCache(
                    self.sim,
                    self.watchable,
                    self._snapshot_fn,
                    key_range,
                    config=self.cache_config,
                    name=f"{self.name}:{key_range}",
                    tracer=self.tracer,
                )
                self._caches[key_range] = cache
                cache.start()

    def _snapshot_fn(self, key_range: KeyRange) -> Tuple[Version, Dict[Key, Any]]:
        version = self.store.last_version
        return version, dict(self.store.scan(key_range, version))

    # ------------------------------------------------------------------
    # serving

    def owns(self, key: Key) -> bool:
        return any(r.contains(key) for r in self._caches)

    @property
    def owned_ranges(self) -> List[KeyRange]:
        return list(self._caches)

    def _cache_for(self, key: Key) -> Optional[LinkedCache]:
        for key_range, cache in self._caches.items():
            if key_range.contains(key):
                return cache
        return None

    def serve(self, key: Key) -> Tuple[str, Optional[Any]]:
        """('hit', value) | ('unavailable', None) mid-sync |
        ('not_owner', None)."""
        cache = self._cache_for(key)
        if cache is None:
            self.not_owner += 1
            return ("not_owner", None)
        if not cache.available:
            self.unavailable += 1
            return ("unavailable", None)
        self.hits += 1
        return ("hit", cache.get_latest(key))

    def read_at(self, key: Key, version: Version) -> Tuple[bool, Optional[Any]]:
        """Snapshot read at ``version`` (knowledge-checked)."""
        cache = self._cache_for(key)
        if cache is None or not cache.available:
            return (False, None)
        return cache.read_at(key, version)

    def peek(self, key: Key) -> Optional[CacheEntry]:
        """Entry-style view for the shared staleness audit.

        A tombstone is not a servable entry: reads of a deleted key
        return nothing, so it cannot serve a stale value."""
        cache = self._cache_for(key)
        if cache is None or not cache.available:
            return None
        version = cache.data.latest_version(key)
        value = cache.data.get_latest(key)
        if version is None or value is None:
            return None
        return CacheEntry(value=value, version=version, cached_at=0.0)

    @property
    def linked_caches(self) -> List[LinkedCache]:
        return list(self._caches.values())

    @property
    def resync_count(self) -> int:
        return sum(c.resync_count for c in self._caches.values())

    @property
    def events_applied(self) -> int:
        return sum(c.events_applied for c in self._caches.values())
