"""Pubsub cache invalidation — including the Figure 2 race.

The pipeline: producer store --CDC--> invalidation topic --consumer
group--> cache nodes.  The consumer group's routing is pubsub's own
(key-hash or random over members) and knows nothing about the
auto-sharder's range assignment; §3.1 notes this mismatch is inherent
("affinity mechanisms based on the message key or pubsub partition do
not support independent, dynamic sharding").

Modes (experiment E3's rows):

- ``NAIVE`` — whichever member receives an invalidation applies it to
  its own cache and acks.  With dynamic sharding the receiving member
  is usually not the owner: the owner's entry stays stale *forever*.
- ``OWNER_ACK`` — the member acks only if it *believes* it owns the
  key, else nacks (random rerouting retries until an owner-believer
  takes it).  This is the charitable variant: it fails only in the
  Figure 2 window, when the old owner still believes it owns the key,
  acks the invalidation, and the new owner — which fetched just before
  the update — is never told.
- ``LEASE`` — §3.2.2's mitigation: only the current lease holder may
  ack.  Misses become rare, but handoffs leave ownerless windows in
  which reads cannot be served authoritatively (availability cost).

``FREE`` fanout (every node consumes the whole feed) needs no routing
and no mode: build it with :meth:`PubsubInvalidationPipeline.free`;
each node then processes every invalidation in the system (the
scalability cost §3.2.2 notes).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.cache.node import CacheNode, CacheNodeConfig
from repro.cdc.publisher import CdcPublisher
from repro.pubsub.broker import Broker, RemotePublisher
from repro.pubsub.consumer import Consumer
from repro.pubsub.message import Message
from repro.pubsub.subscription import RoutingPolicy, SubscriptionConfig
from repro.resilience.channel import ChannelConfig
from repro.sharding.autosharder import AutoSharder
from repro.sharding.leases import LeaseManager
from repro.sim.kernel import Simulation
from repro.sim.network import Network
from repro.storage.kv import MVCCStore


def _networked_cdc(
    sim: Simulation,
    store: MVCCStore,
    broker: Broker,
    topic: str,
    network: Network,
    resilience: Optional[ChannelConfig],
    tracer=None,
    group_commit: bool = False,
    causal_index=None,
) -> tuple:
    """Build the CDC→broker path across the simulated network.

    The broker gets a network endpoint (``<topic>-broker``) and the CDC
    publisher publishes through a :class:`RemotePublisher` instead of a
    direct call — the §3.1 cross-DC hop where loss and partitions can
    silently eat invalidations unless the channel config retries.  With
    ``group_commit`` each transaction's records ship as one frame.
    """
    broker.attach_network(network, endpoint=f"{topic}-broker", config=resilience)
    remote = RemotePublisher(
        sim, network, f"{topic}-cdc", broker_endpoint=f"{topic}-broker",
        config=resilience, metrics=broker.metrics, tracer=tracer,
    )
    publisher = CdcPublisher(
        sim, store.history, broker, topic, publish_fn=remote.publish,
        tracer=tracer,
        group_commit=group_commit, publish_batch_fn=remote.publish_batch,
        causal_index=causal_index,
    )
    return publisher, remote


class InvalidationMode(enum.Enum):
    NAIVE = "naive"
    OWNER_ACK = "owner_ack"
    LEASE = "lease"


class PubsubCacheNode(CacheNode):
    """Cache node that processes invalidation messages from pubsub."""

    def __init__(
        self,
        sim: Simulation,
        name: str,
        store: MVCCStore,
        mode: InvalidationMode,
        leases: Optional[LeaseManager] = None,
        config: Optional[CacheNodeConfig] = None,
        tracer=None,
    ) -> None:
        super().__init__(sim, name, store, config, tracer=tracer)
        if mode is InvalidationMode.LEASE and leases is None:
            raise ValueError("LEASE mode requires a LeaseManager")
        self.mode = mode
        self.leases = leases
        self.invalidation_messages_seen = 0
        self.invalidations_acked = 0
        self.invalidations_nacked = 0

    def serve(self, key):
        """In LEASE mode a node may serve only while it holds the lease
        — the §3.2.2 availability cost: during handoffs there is no
        holder, so reads go unserved."""
        if self.mode is InvalidationMode.LEASE:
            assert self.leases is not None
            holder = self.leases.holder(key)
            if holder != self.name:
                if holder is None and self.owns(key):
                    self.leases.try_acquire(self.name, key)
                    if self.leases.holder(key) == self.name:
                        return super().serve(key)
                self.not_owner += 1
                return ("unavailable", None)
        return super().serve(key)

    def handle_invalidation_message(self, message: Message) -> bool:
        """Consumer handler; True = ack, False = nack."""
        self.invalidation_messages_seen += 1
        key = message.key
        version = message.payload["version"]
        if self.mode is InvalidationMode.NAIVE:
            self.apply_invalidation(key, version)
            self.invalidations_acked += 1
            return True
        if self.mode is InvalidationMode.OWNER_ACK:
            if self.owns(key):
                self.apply_invalidation(key, version)
                self.invalidations_acked += 1
                return True
            self.invalidations_nacked += 1
            return False
        # LEASE: only the current holder may ack
        assert self.leases is not None
        holder = self.leases.holder(key)
        if holder == self.name:
            self.apply_invalidation(key, version)
            self.invalidations_acked += 1
            return True
        if holder is None and self.owns(key):
            # try to take the lease we are entitled to
            if self.leases.try_acquire(self.name, key) is not None:
                self.apply_invalidation(key, version)
                self.invalidations_acked += 1
                return True
        self.invalidations_nacked += 1
        return False

    def handle_invalidation_batch(self, messages: List[Message]) -> bool:
        """Group-apply a batched delivery in one invocation.

        Only meaningful in ``NAIVE`` mode, where every message is
        applied-and-acked unconditionally; the owner-gated modes need a
        per-message ack/nack verdict that a single group ack cannot
        express (the pipeline enforces this at construction).
        """
        for message in messages:
            self.invalidation_messages_seen += 1
            self.apply_invalidation(message.key, message.payload["version"])
            self.invalidations_acked += 1
        return True


class PubsubInvalidationPipeline:
    """Wires store -> CDC -> topic -> consumer group of cache nodes."""

    def __init__(
        self,
        sim: Simulation,
        store: MVCCStore,
        broker: Broker,
        sharder: AutoSharder,
        nodes: List[PubsubCacheNode],
        topic: str = "invalidations",
        routing: Optional[RoutingPolicy] = None,
        ack_timeout: float = 0.25,
        num_partitions: int = 8,
        subscribe_nodes: bool = True,
        network: Optional[Network] = None,
        resilience: Optional[ChannelConfig] = None,
        tracer=None,
        delivery_batch: int = 1,
        batch_overhead: float = 0.0,
        group_commit: bool = False,
        service_time: float = 0.0005,
        delivery_mode: str = "fifo",
        causal_hold: float = 0.25,
        causal_index=None,
    ) -> None:
        self.sim = sim
        self.store = store
        self.broker = broker
        self.nodes = nodes
        self.topic = topic
        if delivery_batch > 1 and any(
            node.mode is not InvalidationMode.NAIVE for node in nodes
        ):
            # OWNER_ACK/LEASE decide ack vs nack per message; a group
            # delivery has one shared verdict, so batching would ack
            # invalidations a non-owner should have bounced
            raise ValueError("delivery_batch > 1 requires NAIVE mode nodes")
        self._delivery_batch = delivery_batch
        self._batch_overhead = batch_overhead
        self._service_time = service_time
        if routing is None:
            # OWNER_ACK/LEASE rely on rerouting after a nack, so they
            # need RANDOM; NAIVE uses pubsub's own key affinity.
            routing = (
                RoutingPolicy.KEY
                if nodes and nodes[0].mode is InvalidationMode.NAIVE
                else RoutingPolicy.RANDOM
            )
        broker.create_topic(topic, num_partitions=num_partitions)
        self.remote_publisher: Optional[RemotePublisher] = None
        if network is not None:
            self.publisher, self.remote_publisher = _networked_cdc(
                sim, store, broker, topic, network, resilience, tracer=tracer,
                group_commit=group_commit, causal_index=causal_index,
            )
        else:
            self.publisher = CdcPublisher(
                sim, store.history, broker, topic, tracer=tracer,
                group_commit=group_commit, causal_index=causal_index,
            )
        self.group = broker.consumer_group(
            topic,
            f"{topic}-caches",
            SubscriptionConfig(
                routing=routing,
                ack_timeout=ack_timeout,
                max_delivery_batch=delivery_batch,
                delivery_mode=delivery_mode,
                causal_hold=causal_hold,
            ),
        )
        self._consumers: Dict[str, Consumer] = {}
        for node in nodes:
            self._attach(node)
        if subscribe_nodes:
            for node in nodes:
                sharder.subscribe(node.on_assignment)
        if any(node.mode is InvalidationMode.LEASE for node in nodes):
            leases = nodes[0].leases
            assert leases is not None
            sharder.subscribe(leases.on_assignment, immediate=True)
            self._start_lease_renewal(sharder, leases)

    def _attach(self, node: PubsubCacheNode) -> None:
        consumer = Consumer(
            self.sim,
            node.name,
            handler=node.handle_invalidation_message,
            batch_handler=node.handle_invalidation_batch,
            service_time=self._service_time,
            batch_overhead=self._batch_overhead,
        )
        self._consumers[node.name] = consumer
        self.group.join(consumer)

    def _start_lease_renewal(self, sharder: AutoSharder, leases: LeaseManager) -> None:
        interval = leases.lease_duration / 2.0

        def renew() -> None:
            assignment = sharder.assignment
            for node in self.nodes:
                for key_range in node.owned_ranges:
                    leases.try_acquire(node.name, key_range.low)
            self.sim.call_after(interval, renew)
            del assignment

        self.sim.call_after(interval / 2.0, renew)

    @staticmethod
    def free(
        sim: Simulation,
        store: MVCCStore,
        broker: Broker,
        sharder: AutoSharder,
        nodes: List[PubsubCacheNode],
        topic: str = "invalidations",
        network: Optional[Network] = None,
        resilience: Optional[ChannelConfig] = None,
        tracer=None,
        delivery_batch: int = 1,
        batch_overhead: float = 0.0,
        group_commit: bool = False,
        service_time: float = 0.0005,
        delivery_mode: str = "fifo",
        causal_hold: float = 0.25,
        causal_index=None,
    ) -> "FreeInvalidationPipeline":
        """Build the free-consumer variant instead (§3.2.2 fallback)."""
        return FreeInvalidationPipeline(
            sim, store, broker, sharder, nodes, topic,
            network=network, resilience=resilience, tracer=tracer,
            delivery_batch=delivery_batch, batch_overhead=batch_overhead,
            group_commit=group_commit, service_time=service_time,
            delivery_mode=delivery_mode, causal_hold=causal_hold,
            causal_index=causal_index,
        )


class FreeInvalidationPipeline:
    """Every node consumes the entire invalidation feed.

    Correct under dynamic sharding (each node invalidates its own
    cache), but per-node message load equals the full update rate —
    "an approach that does not scale as update rates increase" (§3.2.2).
    """

    def __init__(
        self,
        sim: Simulation,
        store: MVCCStore,
        broker: Broker,
        sharder: AutoSharder,
        nodes: List[PubsubCacheNode],
        topic: str = "invalidations",
        network: Optional[Network] = None,
        resilience: Optional[ChannelConfig] = None,
        tracer=None,
        delivery_batch: int = 1,
        batch_overhead: float = 0.0,
        group_commit: bool = False,
        service_time: float = 0.0005,
        delivery_mode: str = "fifo",
        causal_hold: float = 0.25,
        causal_index=None,
    ) -> None:
        self.sim = sim
        self.nodes = nodes
        broker.create_topic(topic, num_partitions=8)
        self.remote_publisher: Optional[RemotePublisher] = None
        if network is not None:
            self.publisher, self.remote_publisher = _networked_cdc(
                sim, store, broker, topic, network, resilience, tracer=tracer,
                group_commit=group_commit, causal_index=causal_index,
            )
        else:
            self.publisher = CdcPublisher(
                sim, store.history, broker, topic, tracer=tracer,
                group_commit=group_commit, causal_index=causal_index,
            )
        self._consumers: List[Consumer] = []
        for node in nodes:
            def handler(message: Message, node: PubsubCacheNode = node) -> bool:
                node.invalidation_messages_seen += 1
                node.apply_invalidation(message.key, message.payload["version"])
                return True

            def batch_handler(
                messages: List[Message], node: PubsubCacheNode = node
            ) -> bool:
                # free fanout applies unconditionally, so the whole
                # group lands in one invocation (bulk accounting)
                node.invalidation_messages_seen += len(messages)
                for message in messages:
                    node.apply_invalidation(
                        message.key, message.payload["version"]
                    )
                return True

            consumer = Consumer(
                sim, f"free-{node.name}", handler=handler,
                batch_handler=batch_handler, service_time=service_time,
                batch_overhead=batch_overhead,
            )
            self._consumers.append(consumer)
            broker.free_consumer(
                topic,
                consumer,
                SubscriptionConfig(
                    routing=RoutingPolicy.RANDOM,
                    max_delivery_batch=delivery_batch,
                    delivery_mode=delivery_mode,
                    causal_hold=causal_hold,
                ),
            )
            sharder.subscribe(node.on_assignment)
