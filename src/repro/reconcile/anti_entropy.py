"""Anti-entropy replication reconciler: fingerprint-diff, then repair.

The Plan phase is a two-level check per key-range scope:

1. **O(1) fast path** — if the replica's XOR fingerprint equals the
   :class:`~repro.replication.checker.SnapshotChecker`'s incrementally
   maintained source fingerprint *and* the replica's cursors verify,
   the whole store is legal and every scope plans 'nothing to do'.
2. **Scoped diff** — otherwise, walk the scope's key range comparing
   replica values and per-key cursors against the source head.  A key
   counts as diverged when its per-key cursor is forged beyond the
   source head, or its value differs from the source *and* the
   replica's apply watermark has already passed the source version of
   that key (so the difference cannot be in-flight replication lag).

Divergence must survive **two consecutive rounds** at the same source
version before it is claimed (suspect → confirm): that keeps a live
write burst from being mistaken for corruption, at the price of one
extra round in the convergence bound.

The Execute phase is the repair the tentpole names: targeted re-read
of the confirmed keys from the source at head, force-applied through
:meth:`~repro.replication.target.ReplicaStore.repair` — idempotent by
construction (re-reading and re-writing the authoritative value twice
is the same as once).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro._types import KeyRange, Mutation, Version
from repro.reconcile.framework import (
    PlanResult,
    Reconciler,
    ReconcilerConfig,
    ScopeRecord,
    ScopeTable,
)
from repro.replication.checker import SnapshotChecker
from repro.replication.target import CursorCorruption, ReplicaStore
from repro.sim.kernel import Simulation
from repro.storage.kv import MVCCStore


class AntiEntropyReconciler(Reconciler):
    """Level-triggered repair of a ReplicaStore against its source."""

    def __init__(
        self,
        sim: Simulation,
        source: MVCCStore,
        replica: ReplicaStore,
        shards: Sequence[Tuple[str, KeyRange]],
        checker: Optional[SnapshotChecker] = None,
        name: str = "anti-entropy",
        table: Optional[ScopeTable] = None,
        config: Optional[ReconcilerConfig] = None,
        tracer=None,
    ) -> None:
        super().__init__(sim, name, table=table, config=config, tracer=tracer)
        self.source = source
        self.replica = replica
        self._shards = list(shards)
        self._ranges: Dict[str, KeyRange] = dict(self._shards)
        self.checker = checker
        #: per-scope {key: source version} awaiting confirmation
        self._suspects: Dict[str, Dict[str, Version]] = {}
        self.repaired_keys = 0

    def scopes(self) -> List[str]:
        return [name for name, _ in self._shards]

    # ------------------------------------------------------------------
    # Plan

    def plan(self, scope: str) -> PlanResult:
        head = self.source.last_version
        if (
            self.checker is not None
            and self.replica.fingerprint == self.checker.source_fingerprint
        ):
            try:
                self.replica.verify_cursor(head)
                self._suspects.pop(scope, None)
                return None  # fingerprints match, cursors legal: done
            except CursorCorruption:
                pass  # values match but a cursor is forged: keep diffing
        forged, suspected = self._diverged(self._ranges[scope], head)
        previous = self._suspects.get(scope, {})
        # forged-future cursors are provably corrupt (nothing in flight
        # can explain them) and confirm immediately; value mismatches
        # must recur in two consecutive rounds at the same source
        # version (rules out in-flight write bursts)
        confirmed = sorted(set(forged) | {
            key for key, version in suspected.items()
            if previous.get(key) == version
        })
        if suspected:
            self._suspects[scope] = suspected
        else:
            self._suspects.pop(scope, None)
        if not confirmed:
            return None  # new suspects: wait one round for confirmation
        return ("anti-entropy", {"keys": confirmed})

    def _diverged(
        self, key_range: KeyRange, head: Version
    ) -> Tuple[List[str], Dict[str, Version]]:
        """(provably forged keys, {suspect key: source version})."""
        source_items = dict(self.source.scan(key_range, head))
        forged: List[str] = []
        suspected: Dict[str, Version] = {}
        watermark = self.replica.cursor
        replica_items = {
            key: value for key, value in self.replica.items().items()
            if key_range.contains(key)
        }
        for key in sorted(set(source_items) | set(replica_items)):
            if self.replica.version_of(key) > head:
                forged.append(key)  # cursor beyond head: always corrupt
                continue
            versioned = self.source.get_versioned(key, head)
            src_version = versioned[0] if versioned is not None else head
            src_value = versioned[1] if versioned is not None else None
            if replica_items.get(key) == src_value:
                continue
            if watermark >= src_version:
                # the apply path already passed this version, so the
                # mismatch cannot be replication lag — corruption
                suspected[key] = src_version
        return forged, suspected

    # ------------------------------------------------------------------
    # Execute

    def execute(self, scope: str, record: ScopeRecord) -> None:
        keys = list(record.detail.get("keys", ()))
        op_id = record.op_id

        def repair() -> None:
            head = self.source.last_version
            for key in keys:
                versioned = self.source.get_versioned(key, head)
                if versioned is None:
                    self.replica.repair(key, Mutation.delete(), head)
                else:
                    version, value = versioned
                    self.replica.repair(key, Mutation.put(value), version)
            self.repaired_keys += len(keys)
            self._suspects.pop(scope, None)
            self.finish(scope, op_id, True, keys=len(keys))

        self.sim.call_after(self.config.op_latency, repair)
