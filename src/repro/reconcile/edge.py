"""Edge/placement reconciler: sessions, reconnect cursors, assignments.

Three legality invariants, one scope each:

``placement``
    The installed :class:`~repro.sharding.assignment.Assignment` must
    carry the sharder's own generation stamp.  A mismatch means the map
    was forged or replaced behind the sharder's back; the repair is
    :meth:`~repro.sharding.autosharder.AutoSharder.reinstall` — re-stamp
    the current slices as a fresh generation so every listener
    re-converges on an authoritative map.
``edge/<client>`` — cursor violation
    A client's durable reconnect cursor must not exceed the source
    head.  A forged-future cursor makes every delta catch-up silently
    skip the gap, so the repair is
    :meth:`~repro.edge.client.EdgeClient.force_resync`: throw the
    cursor and local state away and rebuild from a snapshot.
``edge/<client>`` — orphaned session
    A session the client believes is live must be fed by some frontend.
    A half-open session (active, but absent from every frontend's
    session map) delivers nothing forever; the repair closes it so the
    client's normal reconnect path re-homes it.

Like the anti-entropy reconciler this is level-triggered: it looks at
the state every tick, not at any event stream, so it catches
corruption no failure notification would ever report.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.reconcile.framework import (
    PlanResult,
    Reconciler,
    ReconcilerConfig,
    ScopeRecord,
    ScopeTable,
)
from repro.sim.kernel import Simulation


class EdgeReconciler(Reconciler):
    """Level-triggered repair of edge sessions, cursors and placement."""

    def __init__(
        self,
        sim: Simulation,
        clients: Sequence,                      # EdgeClient
        frontends: Sequence,                    # WatchEdgeFrontend
        head_fn: Callable[[], int],             # authoritative head version
        sharder=None,                           # AutoSharder (optional)
        name: str = "edge-reconciler",
        table: Optional[ScopeTable] = None,
        config: Optional[ReconcilerConfig] = None,
        tracer=None,
    ) -> None:
        super().__init__(sim, name, table=table, config=config, tracer=tracer)
        self.clients = list(clients)
        self.frontends = list(frontends)
        self.head_fn = head_fn
        self.sharder = sharder
        self._by_name = {client.name: client for client in self.clients}
        self.resyncs = 0
        self.rehomes = 0
        self.reinstalls = 0

    def scopes(self) -> List[str]:
        names: List[str] = []
        if self.sharder is not None:
            names.append("placement")
        names.extend(f"edge/{client.name}" for client in self.clients)
        return names

    # ------------------------------------------------------------------
    # Plan

    def plan(self, scope: str) -> PlanResult:
        if scope == "placement":
            return self._plan_placement()
        return self._plan_client(self._by_name[scope.split("/", 1)[1]])

    def _plan_placement(self) -> PlanResult:
        if self.sharder.assignment.generation != self.sharder.generation:
            return ("reinstall", {
                "installed": self.sharder.assignment.generation,
                "expected": self.sharder.generation,
            })
        return None

    def _plan_client(self, client) -> PlanResult:
        if client.stopped:
            return None
        if client.cursor > self.head_fn():
            return ("resync", {"cursor": client.cursor})
        session = client.session
        if session is not None and session.active and self._half_open(client, session):
            return "rehome"
        return None

    def _half_open(self, client, session) -> bool:
        """True when no frontend's session map feeds this session."""
        return not any(
            frontend.sessions.get(client.name) is session
            for frontend in self.frontends
        )

    # ------------------------------------------------------------------
    # Execute

    def execute(self, scope: str, record: ScopeRecord) -> None:
        op_id = record.op_id
        operation = record.operation

        def repair() -> None:
            if operation == "reinstall":
                assignment = self.sharder.reinstall()
                self.reinstalls += 1
                self.finish(scope, op_id, True, generation=assignment.generation)
                return
            client = self._by_name[scope.split("/", 1)[1]]
            if operation == "resync":
                client.force_resync()
                self.resyncs += 1
                self.finish(scope, op_id, True, client=client.name)
            elif operation == "rehome":
                session = client.session
                if session is not None and session.active:
                    session.close("reconcile-rehome")
                self.rehomes += 1
                self.finish(scope, op_id, True, client=client.name)
            else:  # pragma: no cover - plan() only emits the ops above
                self.finish(scope, op_id, False, error=f"unknown op {operation}")

        self.sim.call_after(self.config.op_latency, repair)
