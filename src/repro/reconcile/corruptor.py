"""StateCorruptor: arbitrary-state fault injection for E13.

Self-stabilization is defined over *arbitrary* initial states, not just
states reachable through the system's own failure modes — so the
injector mutates live component internals directly, the way bit-rot,
operator error, or a buggy migration would, without going through any
apply path:

``replica-map-tear``
    Live keys vanish from the :class:`~repro.replication.target.
    ReplicaStore` map (versions stay, so the store still *believes* it
    applied them — no event will ever re-deliver them).
``replica-cursor-rewind``
    Per-key cursors rewind and the values revert to stale garbage, as
    if an old backup was partially restored over the live map.
``replica-cursor-advance``
    Per-key cursors are forged *beyond the source head*: every future
    apply for the key raises :class:`~repro.replication.target.
    CursorCorruption` and the record is lost until repaired.
``edge-cursor-advance``
    A client's durable reconnect cursor is forged beyond the head and
    its session dropped: the reconnect delta-catches-up "from the
    future" and silently misses the gap.
``session-orphan``
    A live session detaches from its frontend (half-open): the client
    keeps a session object that no frontend feeds.
``assignment-stale``
    The sharder's installed assignment is replaced with a forged
    stale-generation map whose ownership is rotated by one node.

Every injection emits one ``corrupt.inject`` trace event carrying the
corruption class and the *scope* the reconcilers use, which is what
lets :meth:`~repro.obs.index.TraceIndex.repair_summary` attribute each
``reconcile.repair`` back to the corruption it fixed.

The corruptor only ever reads randomness from ``sim.rng``, so a seeded
chaos soak replays its injections exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro._types import KeyRange, Version
from repro.obs.trace import hops
from repro.replication.target import ReplicaStore, _item_hash
from repro.sim.kernel import Simulation
from repro.storage.kv import MVCCStore

#: every corruption class the injector knows, in injection-table order
CORRUPTION_CLASSES: Tuple[str, ...] = (
    "replica-map-tear",
    "replica-cursor-rewind",
    "replica-cursor-advance",
    "edge-cursor-advance",
    "session-orphan",
    "assignment-stale",
)

#: how far beyond the source head forged cursors land
_FORGE_MARGIN = 10_000


def shard_scopes(num_shards: int) -> List[Tuple[str, KeyRange]]:
    """Evenly split the a–z key alphabet into named reconcile scopes.

    Mirrors the sharder's even 1-char boundaries so scope names line up
    with how the workload generators spread keys."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    everything = KeyRange.all()
    bounds = [everything.low] + [
        chr(ord("a") + (i * 26) // num_shards) for i in range(1, num_shards)
    ]
    shards: List[Tuple[str, KeyRange]] = []
    for i, low in enumerate(bounds):
        high = bounds[i + 1] if i + 1 < len(bounds) else everything.high
        name = f"replica/{low or 'min'}-{high if i + 1 < len(bounds) else 'max'}"
        shards.append((name, KeyRange(low, high)))
    return shards


def scope_for_key(shards: Sequence[Tuple[str, KeyRange]], key: str) -> str:
    for name, key_range in shards:
        if key_range.contains(key):
            return name
    raise KeyError(key)  # shards partition the whole keyspace


class StateCorruptor:
    """Mutates live state; each class returns how many faults landed."""

    def __init__(
        self,
        sim: Simulation,
        tracer=None,
        source: Optional[MVCCStore] = None,
        replica: Optional[ReplicaStore] = None,
        shards: Optional[Sequence[Tuple[str, KeyRange]]] = None,
        clients: Optional[Sequence] = None,   # EdgeClient
        frontends: Optional[Sequence] = None,  # edge frontends
        sharder=None,                          # AutoSharder
        keys_per_injection: int = 3,
    ) -> None:
        self.sim = sim
        self.tracer = tracer
        self.source = source
        self.replica = replica
        self.shards = list(shards or [])
        self.clients = list(clients or [])
        self.frontends = list(frontends or [])
        self.sharder = sharder
        self.keys_per_injection = keys_per_injection
        self.injections = 0
        self.by_class: Dict[str, int] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # dispatch

    def inject(self, cls: str) -> int:
        """Inject one instance of corruption class ``cls``; returns the
        number of faults that actually landed (0 = no eligible target)."""
        handler = {
            "replica-map-tear": self._tear_map,
            "replica-cursor-rewind": self._rewind_cursors,
            "replica-cursor-advance": self._advance_cursors,
            "edge-cursor-advance": self._forge_edge_cursor,
            "session-orphan": self._orphan_session,
            "assignment-stale": self._forge_assignment,
        }[cls]
        return handler(cls)

    def _record(self, cls: str, scope: str, **attrs) -> None:
        self.injections += 1
        self.by_class[cls] = self.by_class.get(cls, 0) + 1
        self._next_id += 1
        if self.tracer is not None:
            self.tracer.record(
                hops.CORRUPT_INJECT, "corruptor",
                cls=cls, scope=scope, corruption_id=self._next_id, **attrs,
            )

    # ------------------------------------------------------------------
    # replica-side classes (require source/replica/shards)

    def _pick_replica_keys(self) -> List[str]:
        live = sorted(self.replica.items())
        if not live:
            return []
        count = min(self.keys_per_injection, len(live))
        return sorted(self.sim.rng.sample(live, count))

    def _tear_map(self, cls: str) -> int:
        """Delete live keys from the replica map, fingerprint-consistent
        with the torn state (the store has no idea anything happened)."""
        keys = self._pick_replica_keys()
        state = self.replica._state
        for key in keys:
            old = state.pop(key)
            self.replica._fingerprint ^= _item_hash(key, old)
            self._record(cls, scope_for_key(self.shards, key), key=key)
        return len(keys)

    def _rewind_cursors(self, cls: str) -> int:
        """Rewind per-key cursors and revert values to stale garbage —
        a partial restore of an old backup over the live map."""
        keys = self._pick_replica_keys()
        state = self.replica._state
        versions = self.replica._versions
        for key in keys:
            old = state[key]
            stale = {"stale": versions.get(key, 0)}
            self.replica._fingerprint ^= _item_hash(key, old)
            self.replica._fingerprint ^= _item_hash(key, stale)
            state[key] = stale
            versions[key] = max(0, versions.get(key, 0) - 7)
            self._record(cls, scope_for_key(self.shards, key), key=key)
        return len(keys)

    def _advance_cursors(self, cls: str) -> int:
        """Forge per-key cursors beyond the source head: future applies
        for the key raise CursorCorruption and are lost until repaired."""
        keys = self._pick_replica_keys()
        head: Version = self.source.last_version
        versions = self.replica._versions
        for key in keys:
            versions[key] = head + _FORGE_MARGIN
            self._record(cls, scope_for_key(self.shards, key), key=key)
        return len(keys)

    # ------------------------------------------------------------------
    # edge-side classes (require clients/frontends)

    def _forge_edge_cursor(self, cls: str) -> int:
        """Forge a client's durable reconnect cursor beyond the head and
        drop its session: the reconnect silently misses the gap."""
        candidates = [c for c in self.clients if not c.stopped]
        if not candidates or self.source is None:
            return 0
        client = self.sim.rng.choice(candidates)
        client.cursor = self.source.last_version + _FORGE_MARGIN
        self._record(cls, f"edge/{client.name}", client=client.name)
        if client.session is not None:
            client.session.close("corrupted")
        return 1

    def _orphan_session(self, cls: str) -> int:
        """Detach a live session from its frontend without closing it:
        the client keeps waiting on a half-open session forever."""
        candidates = [
            client for client in self.clients
            if client.session is not None and client.session.active
        ]
        if not candidates:
            return 0
        client = self.sim.rng.choice(candidates)
        session = client.session
        for frontend in self.frontends:
            if frontend.sessions.get(client.name) is session:
                del frontend.sessions[client.name]
        handle = getattr(session, "_feed_handle", None)
        if handle is not None and handle.active:
            handle.cancel()
        session._feed_handle = None
        self._record(cls, f"edge/{client.name}", client=client.name)
        return 1

    # ------------------------------------------------------------------
    # placement class (requires sharder)

    def _forge_assignment(self, cls: str) -> int:
        """Install a forged stale-generation assignment with ownership
        rotated by one node, behind the sharder's back."""
        from repro.sharding.assignment import Assignment, Slice

        if self.sharder is None:
            return 0
        current = self.sharder.assignment
        nodes = sorted({s.node for s in current.slices})
        if len(nodes) < 2:
            return 0
        rotate = {
            node: nodes[(i + 1) % len(nodes)] for i, node in enumerate(nodes)
        }
        # a generation stamp the sharder's own counter never issued:
        # one behind when possible (a resurrected old map), else one
        # ahead — relative to the counter, so a second forge on an
        # already-forged map cannot accidentally restore consistency
        expected = self.sharder.generation
        generation = expected - 1 if expected > 0 else expected + 1
        forged = Assignment(
            generation,
            [Slice(s.key_range, rotate[s.node]) for s in current.slices],
        )
        self.sharder._assignment = forged
        self._record(cls, "placement", generation=forged.generation)
        return 1
