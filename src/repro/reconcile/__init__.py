"""repro.reconcile — the self-stabilizing reconciliation plane.

A generic level-triggered Plan/Execute framework
(:class:`~repro.reconcile.framework.Reconciler` over a CAS-claimed
:class:`~repro.reconcile.framework.ScopeTable`), two concrete
reconcilers (anti-entropy replication repair, edge/placement repair),
and the :class:`~repro.reconcile.corruptor.StateCorruptor` fault
injector E13 uses to prove convergence from arbitrary corrupted state.
"""

from repro.reconcile.anti_entropy import AntiEntropyReconciler
from repro.reconcile.corruptor import (
    CORRUPTION_CLASSES,
    StateCorruptor,
    scope_for_key,
    shard_scopes,
)
from repro.reconcile.edge import EdgeReconciler
from repro.reconcile.framework import (
    PlanResult,
    Reconciler,
    ReconcilerConfig,
    ScopeRecord,
    ScopeTable,
    SingleWriterViolation,
)

__all__ = [
    "AntiEntropyReconciler",
    "CORRUPTION_CLASSES",
    "EdgeReconciler",
    "PlanResult",
    "Reconciler",
    "ReconcilerConfig",
    "ScopeRecord",
    "ScopeTable",
    "SingleWriterViolation",
    "StateCorruptor",
    "scope_for_key",
    "shard_scopes",
]
