"""The generic Plan/Execute reconciler: level-triggered repair loops.

The control-loop shape follows the reconciler spec the related work
documents (and Kubernetes-style controllers generally):

- **Plan** — on every tick, observe *actual vs desired* per scope.  A
  scope found diverged gets exactly one operation claimed against it
  via an optimistic-concurrency CAS (the ``WHERE operation = 'NONE'``
  idiom): a second reconciler planning the same scope in the same
  window loses the race and backs off instead of double-repairing.
- **Execute** — the claimed operation runs asynchronously with a
  per-attempt deadline; failures retry on a bounded
  :class:`~repro.resilience.retry.RetryPolicy` schedule, and an
  exhausted budget parks the scope in a terminal ERROR state (skipped
  until an operator clears it).  Status columns (operation, op id,
  owner, attempts) are single-writer: only the claiming reconciler may
  complete or fail its own operation.

Because the loop is *level*-triggered — it looks at state, not at an
event stream — it repairs divergence of **arbitrary** origin: missed
events, torn maps, forged cursors, state mutated behind the system's
back.  That is the self-stabilization property E13 measures: from any
corrupted state, a bounded number of rounds returns the system to a
legal one.  Subclasses provide three methods::

    scopes()              -> iterable of scope names (stable order)
    plan(scope)           -> None (legal) | op | (op, detail_dict)
    execute(scope, record) -> starts the repair; must eventually call
                              finish(scope, record.op_id, ok)

Everything runs on the simulation clock; tracing emits ``reconcile.*``
control events so :meth:`~repro.obs.index.TraceIndex.repair_summary`
can attribute every repair to the corruption it fixed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Tuple, Union

from repro.obs.trace import hops
from repro.resilience.retry import RetryPolicy
from repro.sim.kernel import Simulation

#: what plan() may return: legal / an op kind / an op kind plus detail
PlanResult = Union[None, str, Tuple[str, Dict[str, Any]]]


class SingleWriterViolation(RuntimeError):
    """A reconciler touched an operation it does not own."""


@dataclass
class ReconcilerConfig:
    """Loop cadence and per-operation failure policy."""

    #: seconds between Plan rounds
    tick: float = 0.5
    #: per-*attempt* execution deadline; an attempt still running this
    #: long after launch is failed (and retried or parked in ERROR)
    op_timeout: float = 5.0
    #: simulated latency of one execute attempt (subclasses use it to
    #: schedule their completion)
    op_latency: float = 0.02
    #: bounded retries at a fixed interval (no jitter: reconcile
    #: schedules replay deterministically)
    retry: RetryPolicy = field(default_factory=lambda: RetryPolicy(
        base_delay=0.5, multiplier=1.0, max_delay=0.5,
        jitter=0.0, max_attempts=3,
    ))

    def __post_init__(self) -> None:
        if self.tick <= 0:
            raise ValueError("tick must be positive")
        if self.op_timeout <= 0:
            raise ValueError("op_timeout must be positive")


@dataclass
class ScopeRecord:
    """Single-writer status row for one scope.

    ``operation is None`` means the scope has no pending work (the
    'NONE' state the CAS claims against); ``terminal_error`` set means
    the scope is parked in ERROR and skipped until cleared."""

    scope: str
    operation: Optional[str] = None
    op_id: Optional[str] = None
    owner: Optional[str] = None
    op_started_at: float = 0.0
    attempts: int = 0
    retry_at: float = 0.0
    running: bool = False
    terminal_error: Optional[str] = None
    detail: Dict[str, Any] = field(default_factory=dict)


class ScopeTable:
    """Shared status table: one record per scope, CAS-claimed ops.

    Multiple reconcilers may share one table (the concurrency the CAS
    exists for); the claim is the only mutation that races, and it is
    atomic by construction — everything runs on the single-threaded sim
    kernel, so 'atomic' means 'check and set in one call'.
    """

    def __init__(self) -> None:
        self._records: Dict[str, ScopeRecord] = {}
        self._next_op = 0
        self.claims = 0
        self.cas_rejects = 0
        self.completions = 0
        self.failures = 0
        self.terminal_errors = 0

    def record(self, scope: str) -> ScopeRecord:
        record = self._records.get(scope)
        if record is None:
            record = self._records[scope] = ScopeRecord(scope)
        return record

    def records(self) -> Dict[str, ScopeRecord]:
        return dict(self._records)

    def mint_op_id(self, scope: str) -> str:
        """A fresh per-attempt operation id (stale async completions
        carrying an old id are ignored)."""
        self._next_op += 1
        return f"{scope}#{self._next_op}"

    def claim(
        self,
        scope: str,
        operation: str,
        owner: str,
        now: float,
        detail: Optional[Dict[str, Any]] = None,
    ) -> Optional[ScopeRecord]:
        """CAS-claim ``operation`` on ``scope``; None if already held.

        The optimistic lock: succeeds only when the record's operation
        column is 'NONE' (and the scope is not parked in ERROR)."""
        record = self.record(scope)
        if record.operation is not None or record.terminal_error is not None:
            self.cas_rejects += 1
            return None
        record.operation = operation
        record.op_id = None  # minted per attempt at launch
        record.owner = owner
        record.op_started_at = now
        record.attempts = 0
        record.retry_at = now
        record.running = False
        record.detail = dict(detail or {})
        self.claims += 1
        return record

    def complete(self, scope: str, op_id: str, owner: str) -> None:
        """Operation done and verified: back to 'NONE' (single-writer)."""
        record = self.record(scope)
        if record.op_id != op_id or record.owner != owner:
            raise SingleWriterViolation(
                f"{owner!r} completing {op_id!r} on {scope!r} held by "
                f"{record.owner!r} as {record.op_id!r}"
            )
        record.operation = None
        record.op_id = None
        record.owner = None
        record.running = False
        record.detail = {}
        self.completions += 1

    def fail(
        self,
        scope: str,
        op_id: str,
        owner: str,
        now: float,
        retry: RetryPolicy,
        rng,
        error: str = "failed",
    ) -> bool:
        """Record a failed attempt; returns True when the scope is now
        parked in terminal ERROR (retry budget exhausted)."""
        record = self.record(scope)
        if record.op_id != op_id or record.owner != owner:
            raise SingleWriterViolation(
                f"{owner!r} failing {op_id!r} on {scope!r} held by "
                f"{record.owner!r} as {record.op_id!r}"
            )
        record.running = False
        self.failures += 1
        max_attempts = retry.max_attempts
        if max_attempts is not None and record.attempts >= max_attempts:
            record.terminal_error = error
            self.terminal_errors += 1
            return True
        record.retry_at = now + retry.backoff(max(record.attempts, 1), rng)
        return False

    def clear_error(self, scope: str) -> None:
        """Operator override: un-park an ERROR scope (resets the claim)."""
        record = self.record(scope)
        record.terminal_error = None
        record.operation = None
        record.op_id = None
        record.owner = None
        record.running = False
        record.attempts = 0
        record.detail = {}


class Reconciler:
    """The level-triggered Plan/Execute loop (subclass per domain)."""

    def __init__(
        self,
        sim: Simulation,
        name: str,
        table: Optional[ScopeTable] = None,
        config: Optional[ReconcilerConfig] = None,
        tracer=None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.table = table if table is not None else ScopeTable()
        self.config = config or ReconcilerConfig()
        self.tracer = tracer
        self.rounds = 0
        self.planned = 0
        self.repairs = 0
        self.cas_rejects = 0
        self.timeouts = 0
        self.giveups = 0
        self.stale_finishes = 0
        #: consecutive rounds in which every scope planned legal and no
        #: operation (ours or anyone's) was pending
        self.idle_rounds = 0
        self._running = False

    # ------------------------------------------------------------------
    # subclass API

    def scopes(self) -> Iterable[str]:  # pragma: no cover - abstract
        raise NotImplementedError

    def plan(self, scope: str) -> PlanResult:  # pragma: no cover - abstract
        raise NotImplementedError

    def execute(self, scope: str, record: ScopeRecord) -> None:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------
    # loop

    def start(self) -> None:
        """Begin ticking on the sim clock (first round after one tick)."""
        if self._running:
            return
        self._running = True
        self.sim.call_after(self.config.tick, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.run_round()
        self.sim.call_after(self.config.tick, self._tick)

    @property
    def converged(self) -> bool:
        """True once a whole round found nothing to plan or execute."""
        return self.idle_rounds >= 1

    def run_round(self) -> bool:
        """One Plan pass over every scope; returns True if any scope was
        diverged or had an operation pending (i.e. not yet converged)."""
        self.rounds += 1
        now = self.sim.now()
        busy = False
        for scope in self.scopes():
            record = self.table.record(scope)
            if record.terminal_error is not None:
                continue  # ERROR is terminal: skip until cleared
            if record.operation is not None:
                busy = True
                if record.owner != self.name:
                    continue  # non-preemptive: another reconciler holds it
                if record.running:
                    if now - record.op_started_at >= self.config.op_timeout:
                        self.timeouts += 1
                        self._trace(hops.RECONCILE_TIMEOUT, record)
                        self._fail(scope, record, error="timeout")
                    continue  # attempt in flight (or just failed)
                if now >= record.retry_at:
                    self._launch(scope, record)
                continue
            wanted = self.plan(scope)
            if wanted is None:
                continue
            busy = True
            operation, detail = (
                wanted if isinstance(wanted, tuple) else (wanted, None)
            )
            record = self.table.claim(scope, operation, self.name, now, detail)
            if record is None:
                # lost the CAS race to a concurrent reconciler
                self.cas_rejects += 1
                self._trace(hops.RECONCILE_CAS_REJECT, self.table.record(scope))
                continue
            self.planned += 1
            self._trace(hops.RECONCILE_PLAN, record)
            self._launch(scope, record)
        self.idle_rounds = 0 if busy else self.idle_rounds + 1
        return busy

    # ------------------------------------------------------------------
    # execution plumbing

    def _launch(self, scope: str, record: ScopeRecord) -> None:
        record.attempts += 1
        record.op_id = self.table.mint_op_id(scope)
        record.op_started_at = self.sim.now()
        record.running = True
        self.execute(scope, record)

    def finish(self, scope: str, op_id: str, ok: bool, **attrs: Any) -> None:
        """Async completion callback for :meth:`execute` attempts.

        A completion whose op id no longer matches the record (the
        attempt timed out and was superseded) is dropped."""
        record = self.table.record(scope)
        if record.op_id != op_id or record.owner != self.name or not record.running:
            self.stale_finishes += 1
            return
        if ok:
            self._trace(hops.RECONCILE_REPAIR, record, **attrs)
            self.table.complete(scope, op_id, self.name)
            self.repairs += 1
        else:
            self._fail(scope, record, error=str(attrs.get("error", "failed")))

    def _fail(self, scope: str, record: ScopeRecord, error: str) -> None:
        terminal = self.table.fail(
            scope, record.op_id, self.name, self.sim.now(),
            self.config.retry, self.sim.rng, error=error,
        )
        if terminal:
            self.giveups += 1
            self._trace(hops.RECONCILE_GIVEUP, record, error=error)

    def _trace(self, hop: str, record: ScopeRecord, **attrs: Any) -> None:
        if self.tracer is not None:
            self.tracer.record(
                hop, self.name,
                scope=record.scope, op=record.operation,
                op_id=record.op_id, attempt=record.attempts,
                round=self.rounds, **attrs,
            )
