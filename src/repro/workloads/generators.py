"""Workload generators.

All randomness flows through the simulation's seeded RNG, so every
experiment is replayable.  Keys are lowercase-prefixed strings, which
keeps them compatible with the auto-sharder's initial alphabet split
and the even-range helpers.
"""

from __future__ import annotations

import string
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro._types import Key, Mutation
from repro.sim.kernel import Simulation, Timeout
from repro.storage.kv import MVCCStore
from repro.workqueue.tasks import Task


def key_universe(n: int, prefix: str = "") -> List[Key]:
    """``n`` distinct keys spread evenly over the a-z alphabet so they
    shard evenly: 'a0000', 'b0001', ..."""
    letters = string.ascii_lowercase
    return [f"{prefix}{letters[i % 26]}{i:05d}" for i in range(n)]


class UniformKeys:
    """Uniform key picker over a universe."""

    def __init__(self, sim: Simulation, keys: Sequence[Key]) -> None:
        if not keys:
            raise ValueError("empty key universe")
        self.sim = sim
        self.keys = list(keys)

    def pick(self) -> Key:
        return self.keys[self.sim.rng.randrange(len(self.keys))]


class ZipfKeys:
    """Zipf-ish skewed picker: rank r chosen ∝ 1/r^s (precomputed CDF)."""

    def __init__(self, sim: Simulation, keys: Sequence[Key], s: float = 1.1) -> None:
        if not keys:
            raise ValueError("empty key universe")
        if s <= 0:
            raise ValueError("s must be positive")
        self.sim = sim
        self.keys = list(keys)
        weights = [1.0 / (rank ** s) for rank in range(1, len(keys) + 1)]
        total = sum(weights)
        acc = 0.0
        self._cdf: List[float] = []
        for w in weights:
            acc += w / total
            self._cdf.append(acc)

    def pick(self) -> Key:
        import bisect

        u = self.sim.rng.random()
        return self.keys[min(bisect.bisect_left(self._cdf, u), len(self.keys) - 1)]


class WriteStream:
    """A process writing single-key updates at a fixed rate."""

    def __init__(
        self,
        sim: Simulation,
        store: MVCCStore,
        picker,  # UniformKeys | ZipfKeys
        rate: float,
        value_fn: Optional[Callable[[int], object]] = None,
        delete_fraction: float = 0.0,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if not 0.0 <= delete_fraction < 1.0:
            raise ValueError("delete_fraction must be in [0, 1)")
        self.sim = sim
        self.store = store
        self.picker = picker
        self.interval = 1.0 / rate
        self.value_fn = value_fn or (lambda n: n)
        self.delete_fraction = delete_fraction
        self.writes = 0
        self._stopped = False

    def start(self) -> None:
        self.sim.spawn(self._run(), name="write-stream")

    def stop(self) -> None:
        self._stopped = True

    def _run(self):
        n = 0
        while not self._stopped:
            key = self.picker.pick()
            if self.delete_fraction > 0 and self.sim.rng.random() < self.delete_fraction:
                if self.store.exists(key):
                    self.store.delete(key)
                else:
                    self.store.put(key, self.value_fn(n))
            else:
                self.store.put(key, self.value_fn(n))
            self.writes += 1
            n += 1
            yield Timeout(self.interval)


class AclWorkload:
    """The §3.2.1 anomaly workload: member/access exclusion pairs.

    For each pair i the store holds ``gNNN/member`` (1 when the member
    is in the group) and ``gNNN/access`` (1 when the group can reach
    the document).  The driver cycles each pair through

        (member=1, access=0) -> remove member -> grant access
        -> revoke access -> re-add member -> ...

    as *separate transactions in that order*, so no committed source
    state ever has member=1 ∧ access=1.  A filler update stream runs
    alongside so appliers have concurrent unrelated traffic.
    """

    def __init__(
        self,
        sim: Simulation,
        store: MVCCStore,
        num_pairs: int = 20,
        cycle_rate: float = 10.0,
        filler_keys: int = 200,
        filler_rate: float = 200.0,
        filler_zipf: Optional[float] = None,
        filler_delete_fraction: float = 0.0,
    ) -> None:
        if num_pairs < 1:
            raise ValueError("num_pairs must be >= 1")
        self.sim = sim
        self.store = store
        self.pairs: List[Tuple[Key, Key]] = [
            (f"g{i:04d}/member", f"g{i:04d}/access") for i in range(num_pairs)
        ]
        self.cycle_interval = 1.0 / cycle_rate
        # filler keys spread over the whole alphabet so range-partitioned
        # pipelines see balanced load (their first char varies); shuffled
        # so zipf-hot ranks don't cluster in one range
        filler_universe = key_universe(filler_keys)
        sim.rng.shuffle(filler_universe)
        picker = (
            ZipfKeys(sim, filler_universe, s=filler_zipf)
            if filler_zipf is not None
            else UniformKeys(sim, filler_universe)
        )
        self.filler = WriteStream(
            sim,
            store,
            picker,
            rate=filler_rate,
            delete_fraction=filler_delete_fraction,
        )
        self.transitions = 0
        self._stopped = False

    def initialize(self) -> None:
        """Seed every pair at (member=1, access=0)."""
        for member_key, access_key in self.pairs:
            self.store.commit(
                {member_key: Mutation.put(1), access_key: Mutation.put(0)}
            )

    def start(self) -> None:
        self.initialize()
        self.filler.start()
        self.sim.spawn(self._run(), name="acl-workload")

    def stop(self) -> None:
        self._stopped = True
        self.filler.stop()

    def _run(self):
        # per-pair phase: 0 remove member, 1 grant, 2 revoke, 3 re-add
        phases = [0] * len(self.pairs)
        while not self._stopped:
            idx = self.sim.rng.randrange(len(self.pairs))
            member_key, access_key = self.pairs[idx]
            phase = phases[idx]
            if phase == 0:
                self.store.put(member_key, 0)
            elif phase == 1:
                self.store.put(access_key, 1)
            elif phase == 2:
                self.store.put(access_key, 0)
            else:
                self.store.put(member_key, 1)
            phases[idx] = (phase + 1) % 4
            self.transitions += 1
            yield Timeout(self.cycle_interval)


class TaskStream:
    """A process submitting keyed tasks to a worker pool.

    ``poison_fraction`` of tasks carry ``poison_work`` (the §3.2.3/§4.3
    head-of-line hazard); the rest carry ``work``.  ``locality`` > 0
    makes consecutive tasks reuse recent keys (affinity opportunity).
    """

    def __init__(
        self,
        sim: Simulation,
        submit: Callable[[Task], None],
        keys: Sequence[Key],
        rate: float,
        work: float = 0.005,
        poison_fraction: float = 0.0,
        poison_work: float = 2.0,
        locality: float = 0.6,
        total: Optional[int] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.submit = submit
        self.keys = list(keys)
        self.interval = 1.0 / rate
        self.work = work
        self.poison_fraction = poison_fraction
        self.poison_work = poison_work
        self.locality = locality
        self.total = total
        self.submitted = 0
        self._recent: List[Key] = []
        self._stopped = False

    def start(self) -> None:
        self.sim.spawn(self._run(), name="task-stream")

    def stop(self) -> None:
        self._stopped = True

    def _pick_key(self) -> Key:
        if self._recent and self.sim.rng.random() < self.locality:
            return self._recent[self.sim.rng.randrange(len(self._recent))]
        key = self.keys[self.sim.rng.randrange(len(self.keys))]
        self._recent.append(key)
        if len(self._recent) > 32:
            self._recent.pop(0)
        return key

    def _run(self):
        task_id = 0
        while not self._stopped and (self.total is None or self.submitted < self.total):
            poison = (
                self.poison_fraction > 0
                and self.sim.rng.random() < self.poison_fraction
            )
            task = Task(
                task_id=task_id,
                key=self._pick_key(),
                work=self.poison_work if poison else self.work,
                enqueued_at=self.sim.now(),
                poison=poison,
            )
            self.submit(task)
            self.submitted += 1
            task_id += 1
            yield Timeout(self.interval)
