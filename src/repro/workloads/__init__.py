"""Workload generation for the experiments.

Deterministic (seeded through the simulation RNG) generators for the
key distributions, write streams, transactional patterns, and task
streams the experiment suite uses.
"""

from repro.workloads.generators import (
    key_universe,
    UniformKeys,
    ZipfKeys,
    WriteStream,
    AclWorkload,
    TaskStream,
)

__all__ = [
    "key_universe",
    "UniformKeys",
    "ZipfKeys",
    "WriteStream",
    "AclWorkload",
    "TaskStream",
]
