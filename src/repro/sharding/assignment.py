"""Key-range assignments.

An :class:`Assignment` is a complete, non-overlapping partition of the
keyspace into :class:`Slice` objects, each owned by one node, stamped
with a generation number.  Assignments are immutable; the auto-sharder
produces a new generation for every change, and listeners compare
generations to discard stale notifications.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro._types import KEY_MAX, KEY_MIN, Key, KeyRange


@dataclass(frozen=True)
class Slice:
    """One owned key range."""

    key_range: KeyRange
    node: str

    def __str__(self) -> str:
        return f"{self.key_range}->{self.node}"


class Assignment:
    """Immutable, complete partition of the keyspace over nodes."""

    def __init__(self, generation: int, slices: Sequence[Slice]) -> None:
        ordered = sorted(slices, key=lambda s: s.key_range.low)
        self._validate(ordered)
        self.generation = generation
        self.slices: Tuple[Slice, ...] = tuple(ordered)
        self._lows: List[Key] = [s.key_range.low for s in ordered]

    @staticmethod
    def _validate(ordered: Sequence[Slice]) -> None:
        if not ordered:
            raise ValueError("assignment must cover the keyspace (no slices)")
        if ordered[0].key_range.low != KEY_MIN:
            raise ValueError(f"gap before first slice {ordered[0]}")
        for prev, cur in zip(ordered, ordered[1:]):
            if prev.key_range.high != cur.key_range.low:
                raise ValueError(f"gap/overlap between {prev} and {cur}")
        if ordered[-1].key_range.high != KEY_MAX:
            raise ValueError(f"gap after last slice {ordered[-1]}")

    @staticmethod
    def single(node: str, generation: int = 0) -> "Assignment":
        """Everything owned by one node."""
        return Assignment(generation, [Slice(KeyRange.all(), node)])

    @staticmethod
    def even(nodes: Sequence[str], boundaries: Sequence[Key], generation: int = 0) -> "Assignment":
        """Assign ranges split at ``boundaries`` round-robin to ``nodes``."""
        if not nodes:
            raise ValueError("need at least one node")
        bounds = [KEY_MIN, *sorted(boundaries), KEY_MAX]
        slices = [
            Slice(KeyRange(bounds[i], bounds[i + 1]), nodes[i % len(nodes)])
            for i in range(len(bounds) - 1)
            if bounds[i] < bounds[i + 1]
        ]
        return Assignment(generation, slices)

    # ------------------------------------------------------------------
    # queries

    def slice_for(self, key: Key) -> Slice:
        """The slice containing ``key``."""
        idx = bisect.bisect_right(self._lows, key) - 1
        return self.slices[idx]

    def owner_of(self, key: Key) -> str:
        return self.slice_for(key).node

    def ranges_of(self, node: str) -> List[KeyRange]:
        """All ranges owned by ``node`` (possibly empty)."""
        return [s.key_range for s in self.slices if s.node == node]

    def nodes(self) -> List[str]:
        return sorted({s.node for s in self.slices})

    def load_map(self, loads: Dict[int, float]) -> Dict[str, float]:
        """Aggregate per-slice loads (indexed by slice position) per node."""
        out: Dict[str, float] = {}
        for idx, s in enumerate(self.slices):
            out[s.node] = out.get(s.node, 0.0) + loads.get(idx, 0.0)
        return out

    def __len__(self) -> int:
        return len(self.slices)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Assignment(gen={self.generation}, {len(self.slices)} slices)"
