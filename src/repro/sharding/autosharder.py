"""The auto-sharder: load- and health-driven range reassignment.

Modeled on Slicer (Adya et al., OSDI '16): nodes register, load is
reported per key, and the sharder periodically rebalances by moving
(and, when hot, splitting) ranges from overloaded to underloaded nodes.
Every change produces a new generation-stamped
:class:`~repro.sharding.assignment.Assignment`.

Listeners (cache nodes, workers, lease managers) are notified with a
configurable *per-listener* latency.  That propagation delay is not a
modeling convenience — it is the mechanism of Figure 2: the new owner
of a key can learn about its reassignment and act on it before (or
after) other components do, and nothing synchronizes those views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro._types import KEY_MAX, KEY_MIN, Key, KeyRange
from repro.sharding.assignment import Assignment, Slice
from repro.sim.kernel import Simulation
from repro.sim.metrics import MetricsRegistry

AssignmentListener = Callable[[Assignment], None]


@dataclass
class AutoSharderConfig:
    """Rebalancing behaviour."""

    rebalance_interval: float = 5.0
    #: Trigger rebalance when max node load exceeds mean by this factor.
    imbalance_ratio: float = 1.5
    #: Exponential decay applied to slice loads each interval.
    load_decay: float = 0.5
    #: Split a slice when it alone carries more than this fraction of
    #: the mean node load (and we are under max_slices).
    split_fraction: float = 0.8
    max_slices: int = 64
    #: Latency with which listeners learn about a new assignment.
    notify_latency: float = 0.05
    notify_jitter: float = 0.05

    def __post_init__(self) -> None:
        if self.rebalance_interval <= 0:
            raise ValueError("rebalance_interval must be positive")
        if self.imbalance_ratio < 1.0:
            raise ValueError("imbalance_ratio must be >= 1")
        if not 0.0 <= self.load_decay <= 1.0:
            raise ValueError("load_decay must be in [0, 1]")
        if self.max_slices < 1:
            raise ValueError("max_slices must be >= 1")


class AutoSharder:
    """Generation-stamped dynamic assignment of key ranges to nodes."""

    def __init__(
        self,
        sim: Simulation,
        nodes: List[str],
        config: Optional[AutoSharderConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        auto_rebalance: bool = True,
    ) -> None:
        if not nodes:
            raise ValueError("need at least one node")
        self.sim = sim
        self.config = config or AutoSharderConfig()
        self.metrics = metrics or MetricsRegistry()
        self._nodes: List[str] = list(dict.fromkeys(nodes))
        self._generation = 0
        self._assignment = self._initial_assignment()
        self._listeners: List[AssignmentListener] = []
        #: load per slice index of the current assignment
        self._slice_loads: Dict[int, float] = {}
        #: recent keys per slice (split-point estimation)
        self._slice_keys: Dict[int, List[Key]] = {}
        self.reassignments = 0
        self.splits = 0
        if auto_rebalance:
            sim.call_after(self.config.rebalance_interval, self._rebalance_tick)

    def _initial_assignment(self) -> Assignment:
        # even 1-char boundaries over the node count, round-robin
        n = len(self._nodes)
        boundaries = []
        if n > 1:
            span = 26
            boundaries = [chr(ord("a") + (i * span) // n) for i in range(1, n)]
        return Assignment.even(self._nodes, boundaries, generation=0)

    # ------------------------------------------------------------------
    # observation

    @property
    def assignment(self) -> Assignment:
        """The current (authoritative) assignment."""
        return self._assignment

    @property
    def generation(self) -> int:
        """The generation counter the next install will exceed.

        Legally ``assignment.generation == generation`` at all times; a
        mismatch means the installed assignment was forged/replaced
        behind the sharder's back (the corruption the reconciliation
        plane detects)."""
        return self._generation

    def subscribe(self, listener: AssignmentListener, immediate: bool = True) -> Callable[[], None]:
        """Register a listener; it is notified (with latency) of every
        future assignment, and of the current one when ``immediate``."""
        self._listeners.append(listener)
        if immediate:
            self._notify_one(listener, self._assignment)

        def cancel() -> None:
            if listener in self._listeners:
                self._listeners.remove(listener)

        return cancel

    def record_load(self, key: Key, weight: float = 1.0) -> None:
        """Report one unit of load against the slice owning ``key``."""
        idx = self._slice_index(key)
        self._slice_loads[idx] = self._slice_loads.get(idx, 0.0) + weight
        samples = self._slice_keys.setdefault(idx, [])
        if len(samples) < 64:
            samples.append(key)
        else:
            pos = self.sim.rng.randrange(128)
            if pos < 64:
                samples[pos] = key

    def _slice_index(self, key: Key) -> int:
        s = self._assignment.slice_for(key)
        return self._assignment.slices.index(s)

    # ------------------------------------------------------------------
    # membership

    def add_node(self, node: str) -> None:
        """Join a node; it receives ranges at the next rebalance (or
        immediately steals the largest slice when idle)."""
        if node in self._nodes:
            return
        self._nodes.append(node)
        self._steal_for(node)

    def remove_node(self, node: str) -> None:
        """Remove a node (failure or drain); its ranges move now."""
        if node not in self._nodes:
            return
        self._nodes.remove(node)
        if not self._nodes:
            raise ValueError("cannot remove the last node")
        slices = []
        rr = 0
        for s in self._assignment.slices:
            if s.node == node:
                slices.append(Slice(s.key_range, self._nodes[rr % len(self._nodes)]))
                rr += 1
            else:
                slices.append(s)
        self._install(slices)

    def _steal_for(self, node: str) -> None:
        # give the newcomer the hottest (or widest) slice of the most
        # loaded node
        donor_slices = list(enumerate(self._assignment.slices))
        if not donor_slices:
            return
        idx, victim = max(
            donor_slices, key=lambda pair: self._slice_loads.get(pair[0], 0.0)
        )
        slices = list(self._assignment.slices)
        slices[idx] = Slice(victim.key_range, node)
        self._install(slices)

    # ------------------------------------------------------------------
    # direct control (experiments script handoffs deterministically)

    def move_key(self, key: Key, to_node: str) -> KeyRange:
        """Reassign the slice containing ``key`` to ``to_node``; returns
        the moved range."""
        if to_node not in self._nodes:
            self._nodes.append(to_node)
        slices = list(self._assignment.slices)
        for idx, s in enumerate(slices):
            if s.key_range.contains(key):
                slices[idx] = Slice(s.key_range, to_node)
                self._install(slices)
                return s.key_range
        raise KeyError(key)  # pragma: no cover - assignments are complete

    def split_at(self, boundary: Key) -> None:
        """Split the slice containing ``boundary`` at it (no-op when the
        boundary already exists)."""
        slices = []
        changed = False
        for s in self._assignment.slices:
            if s.key_range.contains(boundary) and s.key_range.low != boundary:
                slices.append(Slice(KeyRange(s.key_range.low, boundary), s.node))
                slices.append(Slice(KeyRange(boundary, s.key_range.high), s.node))
                changed = True
            else:
                slices.append(s)
        if changed:
            self._install(slices)

    def reinstall(self) -> Assignment:
        """Re-stamp the currently installed slices as a fresh generation
        and notify every listener (the repair for a forged/stale
        assignment: whatever map is installed becomes the authoritative
        truth again, and listeners re-converge on it)."""
        self._install(list(self._assignment.slices))
        return self._assignment

    # ------------------------------------------------------------------
    # rebalancing

    def _rebalance_tick(self) -> None:
        self.rebalance_once()
        for idx in list(self._slice_loads):
            self._slice_loads[idx] *= self.config.load_decay
        self.sim.call_after(self.config.rebalance_interval, self._rebalance_tick)

    def rebalance_once(self) -> bool:
        """One rebalance pass; returns True if the assignment changed."""
        node_loads: Dict[str, float] = {node: 0.0 for node in self._nodes}
        for idx, s in enumerate(self._assignment.slices):
            node_loads[s.node] = node_loads.get(s.node, 0.0) + self._slice_loads.get(idx, 0.0)
        if not node_loads:
            return False
        mean = sum(node_loads.values()) / len(node_loads)
        if mean <= 0:
            return False
        hottest = max(node_loads, key=lambda n: node_loads[n])
        coolest = min(node_loads, key=lambda n: node_loads[n])
        if node_loads[hottest] <= self.config.imbalance_ratio * mean:
            return False
        # candidate: the hottest slice on the hottest node
        candidates = [
            (self._slice_loads.get(idx, 0.0), idx)
            for idx, s in enumerate(self._assignment.slices)
            if s.node == hottest
        ]
        if not candidates:
            return False
        load, idx = max(candidates)
        victim = self._assignment.slices[idx]
        if (
            load > self.config.split_fraction * mean
            and len(self._assignment.slices) < self.config.max_slices
        ):
            boundary = self._split_point(idx, victim.key_range)
            if boundary is not None:
                slices = list(self._assignment.slices)
                slices[idx : idx + 1] = [
                    Slice(KeyRange(victim.key_range.low, boundary), victim.node),
                    Slice(KeyRange(boundary, victim.key_range.high), coolest),
                ]
                self.splits += 1
                self._install(slices)
                return True
        slices = list(self._assignment.slices)
        slices[idx] = Slice(victim.key_range, coolest)
        self._install(slices)
        return True

    def _split_point(self, idx: int, key_range: KeyRange) -> Optional[Key]:
        samples = sorted(
            k for k in self._slice_keys.get(idx, ()) if key_range.contains(k)
        )
        if len(samples) < 2:
            return None
        boundary = samples[len(samples) // 2]
        if boundary <= key_range.low or boundary >= key_range.high:
            return None
        return boundary

    # ------------------------------------------------------------------
    # installation & notification

    def _install(self, slices: List[Slice]) -> None:
        self._generation += 1
        old = self._assignment
        self._assignment = Assignment(self._generation, slices)
        # remap load bookkeeping to new slice indices by range midpoints
        new_loads: Dict[int, float] = {}
        new_keys: Dict[int, List[Key]] = {}
        for old_idx, old_slice in enumerate(old.slices):
            load = self._slice_loads.get(old_idx, 0.0)
            keys = self._slice_keys.get(old_idx, [])
            for new_idx, new_slice in enumerate(self._assignment.slices):
                if new_slice.key_range.overlaps(old_slice.key_range):
                    new_loads[new_idx] = new_loads.get(new_idx, 0.0) + load
                    new_keys.setdefault(new_idx, []).extend(
                        k for k in keys if new_slice.key_range.contains(k)
                    )
                    load = 0.0  # attribute to first overlap only
                    break
        self._slice_loads = new_loads
        self._slice_keys = {i: keys[:64] for i, keys in new_keys.items()}
        self.reassignments += 1
        self.metrics.counter("sharder.reassignments").inc()
        for listener in list(self._listeners):
            self._notify_one(listener, self._assignment)

    def _notify_one(self, listener: AssignmentListener, assignment: Assignment) -> None:
        delay = self.config.notify_latency
        if self.config.notify_jitter > 0:
            delay += self.sim.rng.random() * self.config.notify_jitter
        self.sim.call_after(delay, lambda: listener(assignment))
