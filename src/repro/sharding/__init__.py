"""Dynamic key-range auto-sharding (Slicer / Shard Manager stand-in).

The paper leans on auto-sharders twice: as the mechanism modern caches
use for "dynamic key range assignment ... better availability/balancing
than static approaches" (§3.2.2, citing Slicer), and as the assignment
layer for affinitized, dynamically sharded workers in the proposed
model (§4.3).  This package provides:

- :class:`~repro.sharding.assignment.Assignment` — a generation-stamped
  partition of the keyspace over nodes;
- :class:`~repro.sharding.autosharder.AutoSharder` — load- and
  membership-driven reassignment with per-listener notification latency
  (the delay that makes the Figure 2 race possible);
- :class:`~repro.sharding.leases.LeaseManager` — the §3.2.2 mitigation:
  at most one owner per range at any instant, at the cost of ownerless
  windows during handoff (the availability tradeoff the paper notes).
"""

from repro.sharding.assignment import Assignment, Slice
from repro.sharding.autosharder import AutoSharder, AutoSharderConfig
from repro.sharding.leases import LeaseManager, Lease

__all__ = [
    "Assignment",
    "Slice",
    "AutoSharder",
    "AutoSharderConfig",
    "LeaseManager",
    "Lease",
]
