"""Range leases: the §3.2.2 mitigation and its availability cost.

"Some of the cases where change events are missed can be mitigated by
using a leasing mechanism to ensure that at most one cache server at a
time is allowed to acknowledge a change event from pubsub.  But leases
introduce an availability tradeoff because there will be times when
there is no owner for a range of keys."

:class:`LeaseManager` tracks one lease per assignment slice.  On
reassignment the departing holder's lease must *expire* before the new
owner may acquire — during that window :meth:`holder` returns None and
the experiment counts unavailability.  The safety invariant (at most
one holder per key at any instant) is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro._types import Key, KeyRange
from repro.sharding.assignment import Assignment
from repro.sim.kernel import Simulation


@dataclass
class Lease:
    """One active lease on a key range."""

    key_range: KeyRange
    holder: str
    expires_at: float


class LeaseManager:
    """Per-range leases with handoff-by-expiry."""

    def __init__(self, sim: Simulation, lease_duration: float = 2.0) -> None:
        if lease_duration <= 0:
            raise ValueError("lease_duration must be positive")
        self.sim = sim
        self.lease_duration = lease_duration
        self._leases: List[Lease] = []
        #: who the sharder currently wants to own each range
        self._desired: Optional[Assignment] = None
        self.handoffs = 0
        self.acquisitions = 0

    # ------------------------------------------------------------------
    # assignment side

    def on_assignment(self, assignment: Assignment) -> None:
        """Track the sharder's desired ownership.  Existing leases held
        by now-wrong owners are *not* revoked — they expire."""
        if self._desired is not None and assignment.generation <= self._desired.generation:
            return
        self._desired = assignment

    # ------------------------------------------------------------------
    # node side

    def try_acquire(self, node: str, key: Key) -> Optional[Lease]:
        """Node attempts to (re)acquire the lease for the range owning
        ``key``.  Succeeds iff the sharder wants ``node`` to own it and
        no conflicting unexpired lease exists."""
        if self._desired is None or self._desired.owner_of(key) != node:
            return None
        desired_range = self._desired.slice_for(key).key_range
        now = self.sim.now()
        self._expire(now)
        for lease in self._leases:
            if not lease.key_range.overlaps(desired_range):
                continue
            if lease.holder == node:
                # renewal (only for the same range shape)
                if lease.key_range == desired_range:
                    lease.expires_at = now + self.lease_duration
                    return lease
                return None
            return None  # someone else still holds an overlapping lease
        lease = Lease(desired_range, node, now + self.lease_duration)
        self._leases.append(lease)
        self.acquisitions += 1
        return lease

    def release(self, node: str, key: Key) -> bool:
        """Voluntarily release (graceful handoff shortens the gap)."""
        now = self.sim.now()
        for lease in self._leases:
            if lease.holder == node and lease.key_range.contains(key) and lease.expires_at > now:
                lease.expires_at = now
                self.handoffs += 1
                return True
        return False

    # ------------------------------------------------------------------
    # queries

    def holder(self, key: Key) -> Optional[str]:
        """Current unexpired lease holder for ``key`` (None during
        handoff gaps — the availability cost)."""
        now = self.sim.now()
        self._expire(now)
        for lease in self._leases:
            if lease.key_range.contains(key) and lease.expires_at > now:
                return lease.holder
        return None

    def active_leases(self) -> List[Lease]:
        self._expire(self.sim.now())
        return list(self._leases)

    def _expire(self, now: float) -> None:
        self._leases = [lease for lease in self._leases if lease.expires_at > now]
