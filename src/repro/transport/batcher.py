"""Nagle-style payload coalescing for simulated wire endpoints.

A :class:`BatchingSender` sits in front of :class:`repro.sim.network.Network`
and buffers payloads per destination.  A buffer flushes as one
:class:`Frame` when it reaches ``max_batch`` payloads or when the oldest
buffered payload has lingered ``max_linger`` sim-seconds — whichever
comes first.  The receive side wraps its handler in an
:class:`Unbatcher`, which unpacks frames back into per-message handler
calls (and passes non-frame payloads through untouched, so a batched
sender can share an endpoint with unbatched peers).

Both flush triggers are deterministic: sizes are plain counters and the
linger timer runs on the sim clock, so a seeded run batches identically
every replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.sim.kernel import Simulation
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Network, payload_message_count
from repro.sim.wire import encode as _wire_encode, register as _wire_register
from repro.obs.trace import Tracer, hops


@dataclass(frozen=True)
class BatchConfig:
    """Flush policy for a batching endpoint.

    ``max_batch`` caps payloads per frame; ``max_linger`` bounds how long
    the first payload of a frame may wait (sim-seconds) before the frame
    is flushed regardless of size.  ``max_linger=0.0`` is legal and means
    "flush on the next zero-delay tick": payloads enqueued at the same
    sim instant still coalesce, but nothing waits on the clock.
    """

    max_batch: int = 16
    max_linger: float = 0.001

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_linger < 0.0:
            raise ValueError(
                f"max_linger must be >= 0, got {self.max_linger}"
            )


@dataclass
class Frame:
    """A wire frame carrying one or more coalesced payloads.

    ``seq`` is the per-(src, dst) frame sequence number; it is what
    ``Network`` records as the dropped unit's ``seq`` when the whole
    frame is lost, so trace joins attribute every coalesced payload.
    """

    seq: int
    payloads: List[Any] = field(default_factory=list)
    #: wire bytes, cached at flush time so the network measures the frame
    #: without re-encoding (encode once, deliver/drop against the cache)
    encoded: Optional[bytes] = field(default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.payloads)


_wire_register(Frame, "transport.Frame", ("seq", "payloads"))

# slab of spent frames: the steady-state batched hot path reuses frame
# shells (and their payload lists) instead of allocating one per flush
_FRAME_POOL: List[Frame] = []
_FRAME_POOL_MAX = 1024


def _acquire_frame(seq: int) -> Frame:
    if _FRAME_POOL:
        frame = _FRAME_POOL.pop()
        frame.seq = seq
        return frame
    return Frame(seq=seq)


def release_frame(frame: Frame) -> None:
    """Return a delivered frame to the slab for reuse.

    Safe only once the frame has left the wire: the :class:`Unbatcher`
    calls this after unpacking (dropped frames are simply garbage
    collected — the network holds no reference after the drop).
    """
    if len(_FRAME_POOL) < _FRAME_POOL_MAX:
        frame.payloads.clear()
        frame.encoded = None
        _FRAME_POOL.append(frame)


# canonical implementation lives next to the counting layer
frame_message_count = payload_message_count


class BatchingSender:
    """Per-destination payload coalescing over a raw ``Network``.

    ``send(dst, payload)`` buffers and returns the frame seq the payload
    will ship under — callers that trace their send hop record that seq
    so a dropped frame joins back to every payload it carried.
    """

    def __init__(
        self,
        sim: Simulation,
        net: Network,
        src: str,
        config: Optional[BatchConfig] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        name: str = "batcher",
    ) -> None:
        self.sim = sim
        self.net = net
        self.src = src
        self.config = config or BatchConfig()
        self.tracer = tracer
        self.metrics = metrics
        self.name = name
        self._next_seq: Dict[str, int] = {}
        self._open: Dict[str, Frame] = {}
        self._opened_at: Dict[str, float] = {}

    # -- sending ---------------------------------------------------------

    def send(self, dst: str, payload: Any) -> int:
        """Buffer ``payload`` for ``dst``; return its frame's seq."""
        frame = self._open.get(dst)
        if frame is None:
            seq = self._next_seq.get(dst, 0)
            self._next_seq[dst] = seq + 1
            frame = _acquire_frame(seq)
            self._open[dst] = frame
            self._opened_at[dst] = self.sim.now()
            self.sim.post(
                self.config.max_linger, lambda: self._linger_flush(dst, seq)
            )
        frame.payloads.append(payload)
        if len(frame) >= self.config.max_batch:
            self.flush(dst)
        return frame.seq

    def flush(self, dst: str) -> None:
        """Ship ``dst``'s open frame now, if any."""
        frame = self._open.pop(dst, None)
        if frame is None:
            return
        opened_at = self._opened_at.pop(dst)
        if self.tracer is not None:
            self.tracer.record(
                hops.FRAME_FLUSH,
                self.name,
                key=None,
                version=None,
                src=self.src,
                dst=dst,
                seq=frame.seq,
                n_events=len(frame),
                linger=self.sim.now() - opened_at,
            )
        if self.metrics is not None:
            self.metrics.counter(f"{self.name}.frames").inc()
            self.metrics.counter(f"{self.name}.framed_msgs").inc(len(frame))
        frame.encoded = _wire_encode(frame)
        self.net.send(self.src, dst, frame)

    def flush_all(self) -> None:
        for dst in list(self._open):
            self.flush(dst)

    def _linger_flush(self, dst: str, seq: int) -> None:
        frame = self._open.get(dst)
        if frame is not None and frame.seq == seq:
            self.flush(dst)

    # -- introspection ---------------------------------------------------

    def pending(self, dst: str) -> int:
        """Payloads currently buffered for ``dst`` (unsent)."""
        frame = self._open.get(dst)
        return len(frame) if frame is not None else 0


class Unbatcher:
    """Wrap an endpoint handler; unpack frames into per-message calls."""

    def __init__(self, handler: Callable[[str, Any], None]) -> None:
        self._handler = handler

    def __call__(self, src: str, payload: Any) -> None:
        if isinstance(payload, Frame):
            for message in payload.payloads:
                self._handler(src, message)
            # the frame has served its wire purpose; recycle the shell
            release_frame(payload)
        else:
            self._handler(src, payload)
