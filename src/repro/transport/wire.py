"""Transport-facing alias for the wire codec.

The codec itself lives in :mod:`repro.sim.wire` so the network layer can
import it without a ``repro.sim`` → ``repro.transport`` cycle (this
package's ``__init__`` pulls in the batcher, which imports the network).
Transport code and tests import it from here, next to the framing types
it encodes.
"""

from repro.sim.wire import (
    CallableRef,
    Opaque,
    WireError,
    decode,
    encode,
    register,
    wire_size,
)

__all__ = [
    "CallableRef",
    "Opaque",
    "WireError",
    "decode",
    "encode",
    "register",
    "wire_size",
]
