"""Batched transport: wire-level message coalescing for every hop.

Kafka's throughput edge over per-message brokers comes almost entirely
from producer/consumer batching (Dobbelaere & Sheykh Esmaili), and
MigratoryData reaches millions of concurrent users by coalescing
messages into frames at the wire (Rotaru et al.).  This package is that
lever for the whole reproduction: a :class:`BatchingSender` aggregates
payloads per ``(src, dst)`` stream into :class:`Frame` objects under a
:class:`BatchConfig` flush policy (max batch size, max linger time on
the *sim* clock — a Nagle-style window), and an :class:`Unbatcher`
restores per-message delivery on the receive side.

The same :class:`BatchConfig` also drives the batching mode of
:class:`~repro.resilience.channel.ReliableChannel` (group frames, one
cumulative ack per frame, batch retransmit), the CDC publisher's
group-commit, the broker's batch delivery push path, and the edge
tier's bulk session offers — see ``docs/transport.md`` for the map.

Determinism contract: batching is **off by default everywhere**; with
it off, every code path is byte-identical to the unbatched layer it
wraps.  With it on, all flush timing comes from the sim clock and all
frame boundaries from deterministic counters, so batched runs replay
exactly as well.
"""

from repro.transport.batcher import (
    BatchConfig,
    BatchingSender,
    Frame,
    Unbatcher,
    frame_message_count,
)

__all__ = [
    "BatchConfig",
    "BatchingSender",
    "Frame",
    "Unbatcher",
    "frame_message_count",
]
