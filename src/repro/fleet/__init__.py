"""Shard-parallel fleet runner: multi-process deterministic scale-out.

One simulation process tops out around the E14 rung (~500k sessions,
docs/scale.md).  The MigratoryData deployment the paper's scaling story
is measured against holds ~10M concurrent users — a population no
single CPython process reaches in reasonable wall-clock.  The fleet
runner closes that gap the way the Kafka-vs-RabbitMQ study says every
real broker does: **partition the fleet**.  The edge session population
is split across N independent shards, each shard runs as its own fully
deterministic simulation in its own worker process, and the per-shard
results merge into one deterministic report:

- counter columns are summed (plain integer addition, exact);
- latency distributions merge through
  :class:`~repro.obs.mergehist.MergeHist` — fixed shared bucket edges,
  so a merge is integer vector addition and quantiles are identical
  regardless of worker count or completion order;
- trace JSONL concatenates in ``(shard_id, seq)`` order, so
  ``scripts/trace_report.py`` consumes merged output unchanged;
- a conservation check asserts the merged funnels (sessions, messages,
  ``net.bytes.*``) equal the per-shard sums exactly.

Determinism is per-shard and compositional: shard ``i`` of ``N`` seeds
its simulation from :func:`shard_seed` (the deterministic md5 hash in
``repro.pubsub.topic``), never from process identity, wall clock, or
scheduling — so ``jobs=1`` (in-process, sequential) and ``jobs=N``
(worker pool) produce byte-identical merged reports, and two
invocations of either are byte-identical to each other.

See E17 (``repro.bench.experiments.e17_fleet_scale``) for the headline
sweep and ``docs/scale.md`` ("Toward 10M") for where this sits in the
scaling story.
"""

from repro.fleet.pool import process_map
from repro.fleet.runner import (
    ConservationError,
    FleetReport,
    FleetRunner,
    ShardResult,
    ShardSpec,
    shard_seed,
)

__all__ = [
    "ConservationError",
    "FleetReport",
    "FleetRunner",
    "ShardResult",
    "ShardSpec",
    "process_map",
    "shard_seed",
]
