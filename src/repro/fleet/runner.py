"""The fleet runner: shard specs, worker results, deterministic merge.

The contract between a fleet and its shards:

- The runner hands each worker a :class:`ShardSpec` — shard id, shard
  count, a seed derived via :func:`shard_seed`, and the run's shared
  parameter dict.  That spec is the worker's ONLY input: a conforming
  worker derives everything (RNG, key namespace, population slice)
  from it, never from process identity, wall clock, or environment.
- The worker returns a :class:`ShardResult` — integer counters, named
  :class:`~repro.obs.mergehist.MergeHist` latency histograms, and its
  trace JSONL.  Everything in it must be picklable and deterministic.
- The runner merges results in shard-id order into a
  :class:`FleetReport`: counters summed, histograms merged bucket-wise
  (exact), traces concatenated in ``(shard_id, seq)`` order.  Because
  every merge operation is exact integer addition, the report is
  byte-identical for any worker count — ``jobs=1`` in-process equals
  ``jobs=N`` across processes, which is what the determinism suite
  pins.

:meth:`FleetReport.check_conservation` is the anti-entropy bar carried
over from the single-process experiments: every declared funnel
(``offered == delivered + coalesced + ...``, ``net.bytes.sent ==
delivered + dropped``) must balance in every shard AND in the merged
totals, and the merged totals must equal the independently recomputed
per-shard sums.  A fleet that cannot account for every update across
the process boundary has no business reporting loss numbers.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.fleet.pool import process_map
from repro.obs.mergehist import MergeHist
from repro.pubsub.topic import _stable_hash

__all__ = [
    "ConservationError",
    "FleetReport",
    "FleetRunner",
    "ShardResult",
    "ShardSpec",
    "shard_seed",
]


def shard_seed(run_seed: int, shard_id: int) -> int:
    """Deterministic per-shard seed: stable across processes and hosts.

    Derived through the md5-based hash already used for partition
    routing (``repro.pubsub.topic._stable_hash``), NOT the built-in
    ``hash`` — the fleet's replay guarantee must survive
    ``PYTHONHASHSEED`` and interpreter builds.
    """
    return _stable_hash(f"fleet:{run_seed}:{shard_id}")


@dataclass(frozen=True)
class ShardSpec:
    """Everything one worker needs to run its shard (picklable)."""

    shard_id: int
    num_shards: int
    seed: int
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ShardResult:
    """One shard's deterministic output (picklable).

    ``counters`` merge by summation; ``hists`` merge bucket-wise (all
    shards must use identical edges); ``trace_jsonl`` concatenates in
    shard order.  ``info`` is per-shard diagnostic payload that does
    NOT merge and is excluded from the deterministic serialization —
    wall-clock timings live there.
    """

    shard_id: int
    counters: Dict[str, int] = field(default_factory=dict)
    hists: Dict[str, MergeHist] = field(default_factory=dict)
    trace_jsonl: str = ""
    info: Dict[str, Any] = field(default_factory=dict)


class ConservationError(AssertionError):
    """A merged funnel failed to balance against its per-shard sums."""


class FleetReport:
    """The merged view of one fleet run."""

    def __init__(
        self,
        run_seed: int,
        num_shards: int,
        jobs: int,
        shards: List[ShardResult],
    ) -> None:
        self.run_seed = run_seed
        self.num_shards = num_shards
        self.jobs = jobs
        self.shards = sorted(shards, key=lambda s: s.shard_id)
        ids = [s.shard_id for s in self.shards]
        if ids != list(range(num_shards)):
            raise ValueError(f"expected shards 0..{num_shards - 1}, got {ids}")
        #: merged integer counters (exact sums over shards)
        self.counters: Dict[str, int] = {}
        for shard in self.shards:
            for name, value in shard.counters.items():
                self.counters[name] = self.counters.get(name, 0) + value
        #: merged histograms (exact bucket-wise integer merge)
        self.hists: Dict[str, MergeHist] = {}
        for shard in self.shards:
            for name, hist in shard.hists.items():
                merged = self.hists.get(name)
                if merged is None:
                    merged = MergeHist(hist.edges)
                    self.hists[name] = merged
                merged.merge(hist)
        #: parent-side wall clock (seconds); nondeterministic, never
        #: part of the serialized report
        self.wall: float = 0.0

    # ------------------------------------------------------------------
    # merged trace

    def trace_jsonl(self) -> str:
        """All shard traces, concatenated in ``(shard_id, seq)`` order.

        Each shard's tracer already emits lines in seq order, so
        shard-order concatenation IS ``(shard_id, seq)`` order.
        ``scripts/trace_report.py`` and ``TraceIndex`` consume the
        merged file unchanged (shards namespace their keys, so chains
        never collide).
        """
        return "\n".join(
            shard.trace_jsonl for shard in self.shards if shard.trace_jsonl
        )

    # ------------------------------------------------------------------
    # conservation

    def check_conservation(
        self,
        funnels: Mapping[str, Tuple[str, Sequence[str]]] = (),
    ) -> Dict[str, int]:
        """Assert merged totals are exactly the per-shard sums, and
        every declared funnel balances per shard and merged.

        ``funnels`` maps a funnel name to ``(total_key, part_keys)``:
        the invariant is ``counters[total_key] == sum(counters[k] for k
        in part_keys)`` — checked inside every shard and on the merged
        counters.  Missing counters count as 0 (a shard that never
        touched a path contributes nothing).

        Returns ``{funnel_name: merged_total}``; raises
        :class:`ConservationError` listing every violation.
        """
        problems: List[str] = []
        # merged == independently recomputed per-shard sums, per counter
        for name in sorted(self.counters):
            direct = sum(s.counters.get(name, 0) for s in self.shards)
            if direct != self.counters[name]:
                problems.append(
                    f"counter {name}: merged {self.counters[name]} != "
                    f"shard sum {direct}"
                )
        checked: Dict[str, int] = {}
        for funnel_name, (total_key, part_keys) in dict(funnels).items():
            for scope, counters in [
                ("merged", self.counters),
                *[(f"shard {s.shard_id}", s.counters) for s in self.shards],
            ]:
                total = counters.get(total_key, 0)
                parts = sum(counters.get(k, 0) for k in part_keys)
                if total != parts:
                    problems.append(
                        f"funnel {funnel_name} [{scope}]: "
                        f"{total_key}={total} != sum{tuple(part_keys)}={parts}"
                    )
            checked[funnel_name] = self.counters.get(total_key, 0)
        if problems:
            raise ConservationError("; ".join(problems))
        return checked

    # ------------------------------------------------------------------
    # deterministic serialization (the byte-identity surface)

    def to_json(self) -> str:
        """Deterministic JSON of everything mergeable: the merged
        counters and histograms plus each shard's counters.  Two runs
        of the same fleet — any ``jobs`` — serialize byte-identically;
        ``info`` and wall clocks are deliberately excluded."""
        record = {
            "run_seed": self.run_seed,
            "num_shards": self.num_shards,
            "counters": self.counters,
            "hists": {
                name: {
                    "edges": list(hist.edges),
                    "counts": list(hist.counts),
                    "overflow": hist.overflow,
                    "count": hist.count,
                }
                for name, hist in self.hists.items()
            },
            "shards": [
                {"shard_id": s.shard_id, "counters": s.counters}
                for s in self.shards
            ],
        }
        return json.dumps(record, sort_keys=True, separators=(",", ":"))


class FleetRunner:
    """Partition a run into shards, execute them ``jobs`` wide, merge.

    ``worker`` is a module-level function ``ShardSpec -> ShardResult``
    (module-level so it pickles by reference into worker processes).
    """

    def __init__(
        self,
        worker: Callable[[ShardSpec], ShardResult],
        num_shards: int,
        run_seed: int,
        jobs: int = 1,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.worker = worker
        self.num_shards = num_shards
        self.run_seed = run_seed
        self.jobs = jobs

    def specs(self, params: Optional[Dict[str, Any]] = None) -> List[ShardSpec]:
        params = dict(params or {})
        return [
            ShardSpec(
                shard_id=shard_id,
                num_shards=self.num_shards,
                seed=shard_seed(self.run_seed, shard_id),
                params=params,
            )
            for shard_id in range(self.num_shards)
        ]

    def run(self, params: Optional[Dict[str, Any]] = None) -> FleetReport:
        started = time.perf_counter()
        results = process_map(
            self.worker, self.specs(params), jobs=self.jobs
        )
        report = FleetReport(
            run_seed=self.run_seed,
            num_shards=self.num_shards,
            jobs=self.jobs,
            shards=results,
        )
        report.wall = time.perf_counter() - started
        return report
