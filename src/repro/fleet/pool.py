"""Ordered multi-process map: the fleet's worker plumbing.

A thin, deterministic wrapper over :mod:`multiprocessing`: results come
back in *item order* (never completion order), ``jobs=1`` runs inline
in the calling process with no pool at all, and the worker count is
clamped to the item count so idle processes are never forked.  Both the
fleet runner and ``scripts/run_all_experiments.py --jobs N`` sit on
this one function, so the "parallel run == sequential run" property is
proven in one place.

The ``fork`` start method is preferred when the platform offers it:
workers inherit the parent's imported modules, so per-shard startup is
milliseconds instead of a fresh interpreter boot.  Determinism is
unaffected either way — workers compute purely from their pickled
argument (the fleet's contract), not from inherited mutable state.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, List, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["process_map"]


def _context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def process_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: int = 1,
    maxtasksperchild: int | None = 1,
) -> List[R]:
    """Apply ``fn`` to every item, ``jobs`` processes wide, in order.

    - ``jobs <= 1`` (or a single item): plain in-process loop — no
      pool, no pickling, same results by the fleet's determinism
      contract.
    - ``jobs > 1``: a worker pool of ``min(jobs, len(items))``
      processes; ``fn`` and each item must be picklable (``fn`` must be
      a module-level function).  Results are returned in item order.
      ``maxtasksperchild=1`` (the default) recycles each worker after
      one task so a shard's memory is returned to the OS as soon as it
      finishes — the fleet's per-shard footprint never accumulates in
      long-lived workers.

    A worker exception propagates to the caller (re-raised by the
    pool), cancelling the remaining work — a fleet with a failed shard
    has no meaningful merged report.
    """
    items = list(items)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if multiprocessing.current_process().daemon:
        # pool workers are daemonic and may not fork children: a fleet
        # launched *inside* a worker (an E17 run under
        # ``run_all_experiments --jobs``) degrades to the in-process
        # path — same results by the determinism contract, just serial
        return [fn(item) for item in items]
    ctx = _context()
    workers = min(jobs, len(items))
    with ctx.Pool(workers, maxtasksperchild=maxtasksperchild) as pool:
        return pool.map(fn, items, chunksize=1)
